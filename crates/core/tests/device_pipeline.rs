//! Additional device-pipeline coverage: chained devices forwarding each
//! other's ACKs, recovery polls addressed past a device, cache fills from
//! pass-through read replies, and forced hash collisions.

use bytes::Bytes;
use pmnet_core::config::{DeviceConfig, SystemConfig};
use pmnet_core::kvproto::KvFrame;
use pmnet_core::protocol::{PacketType, PmnetHeader};
use pmnet_core::PmnetDevice;
use pmnet_net::{Addr, EchoHost, Packet, World};
use pmnet_sim::{Dur, NodeId};

const CLIENT: Addr = Addr(1);
const SERVER: Addr = Addr(9);
const DEV1: Addr = Addr(101);
const DEV2: Addr = Addr(102);

fn no_retry(mut d: DeviceConfig) -> DeviceConfig {
    d.log_retry_timeout = Dur::secs(3600);
    d.recovery_resend_timeout = Dur::secs(3600);
    d
}

/// client — dev1 — dev2 — server
fn chain() -> (World, NodeId, NodeId, NodeId, NodeId) {
    let cfg = SystemConfig::default();
    let mut w = World::new(41);
    let client = w.add_node(Box::new(EchoHost::sink(CLIENT)));
    let d1 = w.add_node(Box::new(PmnetDevice::new(
        "d1",
        1,
        DEV1,
        no_retry(cfg.device),
    )));
    let d2 = w.add_node(Box::new(PmnetDevice::new(
        "d2",
        2,
        DEV2,
        no_retry(cfg.device),
    )));
    let server = w.add_node(Box::new(EchoHost::sink(SERVER)));
    w.connect(client, d1, cfg.link);
    w.connect(d1, d2, cfg.link);
    w.connect(d2, server, cfg.link);
    w.populate_switch_routes();
    (w, client, d1, d2, server)
}

fn update_pkt(seq: u32, payload: &[u8]) -> (PmnetHeader, Packet) {
    let h = PmnetHeader::request(PacketType::UpdateReq, 0, seq, CLIENT, SERVER, 0, 1)
        .with_payload(payload);
    let p = Packet::udp(CLIENT, SERVER, 51001, 51000, h.encode(payload));
    (h, p)
}

#[test]
fn chained_devices_both_log_and_ack_with_distinct_ids() {
    let (mut w, client, d1, d2, server) = chain();
    let (_, pkt) = update_pkt(1, b"replicate-me");
    w.inject(client, pkt);
    w.run_for(Dur::millis(2));
    assert_eq!(w.node::<PmnetDevice>(d1).log_len(), 1);
    assert_eq!(w.node::<PmnetDevice>(d2).log_len(), 1);
    // The client received two PMNet-ACKs: one per device. Device #2's ack
    // traveled back through device #1 (which must forward, not consume).
    assert_eq!(w.node::<EchoHost>(client).received(), 2);
    assert_eq!(w.node::<EchoHost>(server).received(), 1);
}

#[test]
fn server_ack_drains_every_log_on_the_path() {
    let (mut w, client, d1, d2, _server) = chain();
    let (h, pkt) = update_pkt(1, b"x");
    w.inject(client, pkt);
    w.run_for(Dur::millis(2));
    // Server acks; the ack must invalidate d2's entry, then d1's.
    let server_node = NodeId(3);
    let ack = Packet::udp(SERVER, CLIENT, 51000, 51001, h.server_ack().encode(&[]));
    w.inject(server_node, ack);
    w.run_for(Dur::millis(2));
    assert_eq!(w.node::<PmnetDevice>(d2).log_len(), 0);
    assert_eq!(w.node::<PmnetDevice>(d1).log_len(), 0);
    // The ack also reached the client (after 2 acks = 3 packets total).
    assert_eq!(w.node::<EchoHost>(client).received(), 3);
}

#[test]
fn recovery_poll_for_a_downstream_device_is_forwarded() {
    let (mut w, client, d1, d2, _server) = chain();
    let (_, pkt) = update_pkt(1, b"x");
    w.inject(client, pkt);
    w.run_for(Dur::millis(2));
    // The server polls device #1 specifically; the poll enters at d2,
    // which must forward it rather than answer for its sibling.
    let poll = PmnetHeader::request(PacketType::RecoveryPoll, 0, 0, SERVER, DEV1, 0, 1);
    let pkt = Packet::udp(SERVER, DEV1, 51000, 51002, poll.encode(&[]));
    w.inject(NodeId(3), pkt);
    w.run_for(Dur::millis(2));
    assert_eq!(w.node::<PmnetDevice>(d1).counters().recovery_resends, 1);
    assert_eq!(w.node::<PmnetDevice>(d2).counters().recovery_resends, 0);
}

#[test]
fn pass_through_read_replies_fill_the_cache() {
    let cfg = SystemConfig::default();
    let mut w = World::new(43);
    let client = w.add_node(Box::new(EchoHost::sink(CLIENT)));
    let dev = w.add_node(Box::new(PmnetDevice::new(
        "d",
        1,
        DEV1,
        no_retry(cfg.device.with_cache(128)),
    )));
    let server = w.add_node(Box::new(EchoHost::sink(SERVER)));
    w.connect(client, dev, cfg.link);
    w.connect(dev, server, cfg.link);
    w.populate_switch_routes();

    // A read reply travels server -> client through the device.
    let h = PmnetHeader::request(PacketType::AppReply, 0, 7, CLIENT, SERVER, 0, 1);
    let frame = KvFrame::Value {
        key: Bytes::from_static(b"warm"),
        value: Bytes::from_static(b"cached-by-reply"),
        found: true,
    };
    let reply = Packet::udp(SERVER, CLIENT, 51000, 51001, h.encode(&frame.encode()));
    w.inject(NodeId(2), reply);
    w.run_for(Dur::millis(1));
    // A subsequent read for the same key hits the cache.
    let get_frame = KvFrame::Get {
        key: Bytes::from_static(b"warm"),
    };
    let get = PmnetHeader::request(PacketType::BypassReq, 0, 8, CLIENT, SERVER, 0, 1)
        .with_payload(&get_frame.encode());
    w.inject(
        client,
        Packet::udp(
            CLIENT,
            SERVER,
            51001,
            51000,
            get.encode(&get_frame.encode()),
        ),
    );
    w.run_for(Dur::millis(1));
    let d = w.node::<PmnetDevice>(dev);
    assert_eq!(d.counters().cache_responses, 1);
    let c = d.cache_counters().expect("cache enabled");
    assert_eq!(c.read_fills, 1);
    assert_eq!(c.hits, 1);
    // Miss replies (found == false) must NOT fill the cache.
    let miss_h = PmnetHeader::request(PacketType::AppReply, 0, 9, CLIENT, SERVER, 0, 1);
    let miss = KvFrame::Value {
        key: Bytes::from_static(b"absent"),
        value: Bytes::new(),
        found: false,
    };
    w.inject(
        NodeId(2),
        Packet::udp(SERVER, CLIENT, 51000, 51001, miss_h.encode(&miss.encode())),
    );
    w.run_for(Dur::millis(1));
    assert_eq!(
        w.node::<PmnetDevice>(dev)
            .cache_counters()
            .expect("cache")
            .read_fills,
        1,
        "miss reply must not fill"
    );
}

#[test]
fn pm_backlog_never_stalls_forwarding_at_line_rate() {
    // Section IV-B2: the PM-access stage is decoupled from the pipeline by
    // the Eq. 2 log queue. Starve the queue and blast a burst: some
    // packets bypass logging, but EVERY packet is forwarded at wire pace.
    let cfg = SystemConfig::default();
    let mut w = World::new(53);
    let client = w.add_node(Box::new(EchoHost::sink(CLIENT)));
    // Handicap the PM to 500 MB/s (4 Gbps, well below the 10 Gbps wire) so
    // a line-rate burst genuinely outruns the persistence path.
    let mut device_cfg = no_retry(cfg.device.with_log_queue_bytes(2048));
    device_cfg.pm.bandwidth_bytes_per_sec = 500_000_000;
    let dev = w.add_node(Box::new(PmnetDevice::new("d", 1, DEV1, device_cfg)));
    let server = w.add_node(Box::new(EchoHost::sink(SERVER)));
    w.connect(client, dev, cfg.link);
    w.connect(dev, server, cfg.link);
    w.populate_switch_routes();
    let n = 30u32;
    for seq in 0..n {
        let (_, pkt) = update_pkt(seq, &[0u8; 1000]);
        w.inject(client, pkt);
    }
    // 30 x ~1 kB packets at 10 Gbps ≈ 25 us of wire time per hop; give a
    // small fixed budget far below any PM drain time for 30 kB at
    // 2.5 GB/s + per-write latency if forwarding were (wrongly) serialized
    // behind the log.
    w.run_for(Dur::micros(80));
    assert_eq!(
        w.node::<EchoHost>(server).received(),
        u64::from(n),
        "forwarding must run at line rate regardless of PM backlog"
    );
    let d = w.node::<PmnetDevice>(dev);
    assert!(
        d.log_counters().bypass_queue > 0,
        "the starved log queue must have overflowed: {:?}",
        d.log_counters()
    );
    // Unlogged packets were not acknowledged.
    assert!(
        d.counters().acks_sent < u64::from(n),
        "bypassed packets must not be acknowledged"
    );
}

#[test]
fn hash_collision_bypasses_logging_but_still_forwards() {
    let cfg = SystemConfig::default();
    let mut w = World::new(47);
    let client = w.add_node(Box::new(EchoHost::sink(CLIENT)));
    let dev = w.add_node(Box::new(PmnetDevice::new(
        "d",
        1,
        DEV1,
        no_retry(cfg.device),
    )));
    let server = w.add_node(Box::new(EchoHost::sink(SERVER)));
    w.connect(client, dev, cfg.link);
    w.connect(dev, server, cfg.link);
    w.populate_switch_routes();

    // A genuine CRC-32 collision between two distinct identities, found by
    // solving the CRC's linear kernel for client=1/server=9: (session 0,
    // seq 0) and (session 1601, seq 121713) share HashVal 0xdf8a971b. Both
    // packets verify — their hashes are correct for their own fields — but
    // the log is indexed by hash, so the second must bypass, not clobber.
    let h1 = PmnetHeader::request(PacketType::UpdateReq, 0, 0, CLIENT, SERVER, 0, 1)
        .with_payload(b"first");
    let p1 = Packet::udp(CLIENT, SERVER, 51001, 51000, h1.encode(b"first"));
    w.inject(client, p1);
    w.run_for(Dur::millis(1));
    let h2 = PmnetHeader::request(PacketType::UpdateReq, 1601, 121_713, CLIENT, SERVER, 0, 1)
        .with_payload(b"collider");
    assert_eq!(h2.hash, h1.hash);
    assert_eq!(h2.hash, 0xdf8a_971b);
    w.inject(
        client,
        Packet::udp(CLIENT, SERVER, 51001, 51000, h2.encode(b"collider")),
    );
    w.run_for(Dur::millis(1));
    let d = w.node::<PmnetDevice>(dev);
    assert_eq!(d.log_len(), 1, "collider not logged");
    assert_eq!(d.log_counters().bypass_collision, 1);
    // But it WAS forwarded (both packets reached the server), and only the
    // first got an ACK.
    assert_eq!(w.node::<EchoHost>(server).received(), 2);
    assert_eq!(w.node::<EchoHost>(client).received(), 1);
}

#[test]
fn corrupted_update_is_dropped_not_logged_and_not_acked() {
    let cfg = SystemConfig::default();
    let mut w = World::new(59);
    let client = w.add_node(Box::new(EchoHost::sink(CLIENT)));
    let dev = w.add_node(Box::new(PmnetDevice::new(
        "d",
        1,
        DEV1,
        no_retry(cfg.device),
    )));
    let server = w.add_node(Box::new(EchoHost::sink(SERVER)));
    w.connect(client, dev, cfg.link);
    w.connect(dev, server, cfg.link);
    w.populate_switch_routes();

    // Flip one payload bit after stamping the checksum: the device must
    // treat the packet as loss rather than persist a poisoned entry.
    let (h, _) = update_pkt(1, b"pristine");
    let mut body = h.encode(b"pristine").to_vec();
    let last = body.len() - 1;
    body[last] ^= 0x04;
    w.inject(
        client,
        Packet::udp(CLIENT, SERVER, 51001, 51000, Bytes::from(body)),
    );
    w.run_for(Dur::millis(1));
    let d = w.node::<PmnetDevice>(dev);
    assert_eq!(d.counters().corrupt_dropped, 1);
    assert_eq!(d.log_len(), 0);
    assert_eq!(d.counters().acks_sent, 0);
    assert_eq!(w.node::<EchoHost>(server).received(), 0);

    // A header-field flip (here: the sequence number) is caught by the
    // identity hash alone.
    let mut body = h.encode(b"pristine").to_vec();
    body[3] ^= 0x80; // low byte of `seq`
    w.inject(
        client,
        Packet::udp(CLIENT, SERVER, 51001, 51000, Bytes::from(body)),
    );
    w.run_for(Dur::millis(1));
    assert_eq!(w.node::<PmnetDevice>(dev).counters().corrupt_dropped, 2);
    assert_eq!(w.node::<EchoHost>(server).received(), 0);
}
