//! Property tests for the wire codecs: arbitrary headers and KV frames
//! round-trip exactly, and arbitrary bytes never panic the decoders (a
//! data-plane parser must tolerate any traffic).

use bytes::Bytes;
use pmnet_core::kvproto::KvFrame;
use pmnet_core::protocol::{PacketType, PmnetHeader, FLAG_REDO, HEADER_LEN};
use pmnet_net::Addr;
use proptest::prelude::*;

fn arb_ptype() -> impl Strategy<Value = PacketType> {
    prop_oneof![
        Just(PacketType::UpdateReq),
        Just(PacketType::BypassReq),
        Just(PacketType::PmnetAck),
        Just(PacketType::ServerAck),
        Just(PacketType::Retrans),
        Just(PacketType::CacheResp),
        Just(PacketType::AppReply),
        Just(PacketType::RecoveryPoll),
    ]
}

proptest! {
    #[test]
    fn header_round_trips(
        ptype in arb_ptype(),
        redo in any::<bool>(),
        session in any::<u16>(),
        seq in any::<u32>(),
        client in any::<u32>(),
        server in any::<u32>(),
        frag_idx in any::<u16>(),
        frag_cnt in any::<u16>(),
        device_id in any::<u8>(),
        payload in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let mut h = PmnetHeader::request(
            ptype, session, seq, Addr(client), Addr(server), frag_idx, frag_cnt,
        );
        h.device_id = device_id;
        if redo {
            h.flags = FLAG_REDO;
        }
        let body = h.encode(&payload);
        prop_assert_eq!(body.len(), HEADER_LEN + payload.len());
        let (h2, p2) = PmnetHeader::decode(&body).expect("round trip");
        prop_assert_eq!(h, h2);
        prop_assert_eq!(&p2[..], &payload[..]);
        prop_assert_eq!(h2.is_redo(), redo);
    }

    #[test]
    fn header_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = PmnetHeader::decode(&Bytes::from(bytes));
    }

    #[test]
    fn hash_is_a_pure_function_of_request_identity(
        session in any::<u16>(),
        seq in any::<u32>(),
        client in any::<u32>(),
        server in any::<u32>(),
    ) {
        // The server must be able to reconstruct the hash for Retrans
        // addressing (Section IV-B1) from the request identity alone.
        let a = PmnetHeader::request(
            PacketType::UpdateReq, session, seq, Addr(client), Addr(server), 0, 1,
        );
        let b = PmnetHeader::request(
            PacketType::Retrans, session, seq, Addr(client), Addr(server), 0, 1,
        );
        prop_assert_eq!(a.hash, b.hash);
        prop_assert_eq!(a.hash, a.compute_hash(Addr(server)));
    }

    #[test]
    fn kv_frames_round_trip(
        key in prop::collection::vec(any::<u8>(), 0..64),
        value in prop::collection::vec(any::<u8>(), 0..200),
        found in any::<bool>(),
    ) {
        let key = Bytes::from(key);
        let value = Bytes::from(value);
        let frames = [
            KvFrame::Get { key: key.clone() },
            KvFrame::Set { key: key.clone(), value: value.clone() },
            KvFrame::Del { key: key.clone() },
            KvFrame::Value { key, value, found },
        ];
        for f in frames {
            prop_assert_eq!(KvFrame::decode(&f.encode()), Some(f));
        }
    }

    #[test]
    fn kv_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = KvFrame::decode(&Bytes::from(bytes));
    }
}
