//! Property tests for the concurrent apply pool: under random crash
//! schedules, worker counts, scheduler seeds and contended KV workloads,
//! the composition of concurrent apply × redo-log dedup × crash recovery
//! never double-applies an update and never drops an acked one.
//!
//! Every failure message carries the pool's scheduler seed, so a failing
//! interleaving replays exactly with
//! `PMNET_APPLY_SCHED_SEED=<seed> cargo test -p pmnet-core --test concurrent_props`
//! (the env override wins over the generated seed, see
//! `ApplyConfig::sched_seed_from_env`).

use bytes::Bytes;
use pmnet_core::audit;
use pmnet_core::client::{AppRequest, ClientLib, RequestKind, RequestSource};
use pmnet_core::config::ApplyConfig;
use pmnet_core::kvproto::KvFrame;
use pmnet_core::server::ServerLib;
use pmnet_core::system::{BuiltSystem, DesignPoint, SystemBuilder};
use pmnet_core::SystemConfig;
use pmnet_sim::{Dur, SimRng, Time};
use proptest::prelude::*;

const CLIENTS: usize = 3;
const REQUESTS: usize = 20;

/// A KV write workload over a deliberately tiny key space, so concurrent
/// sessions keep colliding on the same keys and the pool's same-key write
/// fences (and the dedup path behind them) are actually exercised.
#[derive(Debug)]
struct ContendedSetSource {
    remaining: usize,
    keys: usize,
}

impl RequestSource for ContendedSetSource {
    fn next_request(&mut self, rng: &mut SimRng) -> Option<AppRequest> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let k = rng.uniform_u64(0..self.keys as u64);
        let mut value = vec![0u8; 32];
        rng.fill_bytes(&mut value);
        let frame = KvFrame::Set {
            key: Bytes::from(format!("key-{k}").into_bytes()),
            value: Bytes::from(value),
        };
        Some(AppRequest {
            kind: RequestKind::Update,
            payload: frame.encode(),
        })
    }
}

fn build(seed: u64, threads: u32, sched_seed: u64, keys: usize) -> BuiltSystem {
    let cfg = SystemConfig {
        client_timeout: Dur::millis(1),
        apply: ApplyConfig::threaded(threads).with_sched_seed(sched_seed),
        ..SystemConfig::default()
    };
    let mut b = SystemBuilder::new(DesignPoint::PmnetSwitch, cfg);
    for _ in 0..CLIENTS {
        b = b.client(Box::new(ContendedSetSource {
            remaining: REQUESTS,
            keys,
        }));
    }
    let mut sys = b.build(seed);
    for &c in &sys.clients.clone() {
        sys.world.start_node(c);
    }
    sys
}

fn all_finished(sys: &BuiltSystem) -> bool {
    sys.clients
        .iter()
        .all(|&c| sys.world.node::<ClientLib>(c).is_finished())
}

/// Drives the world until the workload completes (or a generous deadline
/// passes), then lets retries, recovery resends and make-up acks settle.
fn finish(sys: &mut BuiltSystem) -> bool {
    let deadline = Time::ZERO + Dur::millis(100);
    let mut cursor = sys.world.now();
    while cursor < deadline && !all_finished(sys) {
        cursor = (cursor + Dur::micros(250)).min(deadline);
        sys.world.run_until(cursor);
        if sys.world.pending_events() == 0 {
            break;
        }
    }
    sys.world.run_for(Dur::millis(30));
    all_finished(sys)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// A server crash lands mid-workload while 2–4 apply workers hold
    /// staged updates; after recovery the audit must show every acked
    /// update applied exactly once, device logs drained, and the
    /// recovery barrier closed.
    #[test]
    fn crash_under_concurrent_apply_is_exactly_once(
        seed in any::<u64>(),
        threads in 2u32..5,
        keys in 1usize..4,
        crash_us in 100u64..600,
        downtime_us in 300u64..1200,
    ) {
        let sched_seed = ApplyConfig::sched_seed_from_env(seed.rotate_left(17) ^ 0xa5a5);
        let replay = format!(
            "replay with PMNET_APPLY_SCHED_SEED={sched_seed} \
             (seed={seed} threads={threads} keys={keys} \
             crash_us={crash_us} downtime_us={downtime_us})"
        );

        let mut sys = build(seed, threads, sched_seed, keys);
        let server_id = sys.server;
        sys.world.schedule_crash(
            server_id,
            Time::ZERO + Dur::micros(crash_us),
            Some(Dur::micros(downtime_us)),
        );

        prop_assert!(finish(&mut sys), "workload wedged — {replay}");

        let acked = sys.acked_updates();
        let server = sys.world.node::<ServerLib>(server_id);
        let report = audit::verify(server.audit_log(), &acked);
        prop_assert!(
            report.is_ok(),
            "audit violations {:?} — {replay}",
            report.err(),
        );
        prop_assert_eq!(
            sys.stranded_log_entries(), 0,
            "device logs must drain — {}", replay,
        );
        prop_assert_eq!(
            server.recovery_pending(), 0,
            "recovery barrier must close — {}", replay,
        );
        // Not vacuous: the pool (not the sequential path) applied the
        // workload, and the crash actually forced recovery replays.
        let sc = server.counters();
        prop_assert!(sc.concurrent_applies > 0, "pool never used — {replay}");
        prop_assert_eq!(
            sc.concurrent_applies, sc.updates_applied,
            "every apply must go through the pool — {}", replay,
        );
    }

    /// The scheduler seed fully determines the concurrent run: same
    /// `(seed, sched_seed)` twice must produce the same audit log length,
    /// counters and end state — the property the replay instructions in
    /// the failure messages above rely on.
    #[test]
    fn concurrent_runs_replay_bit_identically_from_the_sched_seed(
        seed in any::<u64>(),
        sched_seed in any::<u64>(),
        crash_us in 100u64..600,
    ) {
        let run = |sys: &mut BuiltSystem| {
            let server_id = sys.server;
            sys.world.schedule_crash(
                server_id,
                Time::ZERO + Dur::micros(crash_us),
                Some(Dur::micros(800)),
            );
            finish(sys)
        };
        let mut a = build(seed, 4, sched_seed, 2);
        let mut b = build(seed, 4, sched_seed, 2);
        prop_assert_eq!(run(&mut a), run(&mut b));
        prop_assert_eq!(a.acked_updates(), b.acked_updates());
        prop_assert_eq!(a.world.now(), b.world.now());
        let (ca, cb) = (
            a.world.node::<ServerLib>(a.server).counters(),
            b.world.node::<ServerLib>(b.server).counters(),
        );
        prop_assert_eq!(format!("{ca:?}"), format!("{cb:?}"));
    }
}
