//! Doorbell-window sweep: the same workload at batch windows 1/4/16/64,
//! checking the batching ladder behaves monotonically — wider windows
//! elide more persist fences and coalesce more acks — while the
//! durability contract (exactly-once apply of every acked update) holds
//! at every point. Run with `--nocapture` to see the table the
//! EXPERIMENTS notes quote.

use pmnet_core::config::{BatchConfig, SystemConfig};
use pmnet_core::system::{DesignPoint, MicroSource, SystemBuilder};
use pmnet_core::{PmnetDevice, ServerLib};
use pmnet_sim::Dur;

struct Point {
    window: u32,
    completed: usize,
    mean_us: f64,
    batches: u64,
    fences_elided: u64,
    coalesced_acks: u64,
    ack_packets: u64,
    apply_batches: u64,
    apply_fences_elided: u64,
}

fn sweep_point(window: u32) -> Point {
    let cfg = SystemConfig {
        batch: BatchConfig::windowed(window),
        ..SystemConfig::default()
    };
    let mut b = SystemBuilder::new(DesignPoint::PmnetSwitch, cfg);
    const CLIENTS: usize = 8;
    const UPDATES: usize = 100;
    for _ in 0..CLIENTS {
        b = b.client(Box::new(MicroSource::updates(UPDATES, 256)));
    }
    let mut sys = b.build(42);
    sys.run_clients(Dur::secs(2));
    let m = sys.metrics();
    assert_eq!(
        m.completed,
        CLIENTS * UPDATES,
        "window {window}: clients wedged"
    );
    let acked = sys.acked_updates();
    let server = sys.world.node::<ServerLib>(sys.server);
    pmnet_core::audit::verify(server.audit_log(), &acked)
        .unwrap_or_else(|e| panic!("window {window}: audit failed: {e:?}"));
    assert_eq!(sys.stranded_log_entries(), 0, "window {window}");
    let c = sys.world.node::<PmnetDevice>(sys.devices[0]).counters();
    let sc = sys.world.node::<ServerLib>(sys.server).counters();
    Point {
        window,
        completed: m.completed,
        mean_us: m.update_latency.mean().as_secs_f64() * 1e6,
        batches: c.batches_flushed,
        fences_elided: c.batch_fences_elided,
        coalesced_acks: c.coalesced_acks,
        ack_packets: c.batch_ack_packets,
        apply_batches: sc.apply_batches,
        apply_fences_elided: sc.apply_fences_elided,
    }
}

#[test]
fn window_sweep_is_monotone_and_durable() {
    let points: Vec<Point> = [1u32, 4, 16, 64].iter().map(|&w| sweep_point(w)).collect();
    println!(
        "{:>6} {:>9} {:>9} {:>8} {:>7} {:>10} {:>8} {:>8} {:>8}",
        "window",
        "completed",
        "mean_us",
        "batches",
        "elided",
        "coalesced",
        "ack_pkts",
        "applyB",
        "applyEl"
    );
    for p in &points {
        println!(
            "{:>6} {:>9} {:>9.2} {:>8} {:>7} {:>10} {:>8} {:>8} {:>8}",
            p.window,
            p.completed,
            p.mean_us,
            p.batches,
            p.fences_elided,
            p.coalesced_acks,
            p.ack_packets,
            p.apply_batches,
            p.apply_fences_elided
        );
    }

    // Window 1 never stages: the batching machinery must be fully inert.
    assert_eq!(points[0].batches, 0);
    assert_eq!(points[0].fences_elided, 0);
    assert_eq!(points[0].coalesced_acks, 0);
    assert_eq!(points[0].apply_batches, 0);

    // Batching must engage from window 4 up and save a large share of
    // persist fences. (Exact counts are not monotone in the window: with
    // 8 closed-loop clients a wide window rarely fills before its
    // max_wait timer fires, so windows 16 and 64 land on the same flush
    // schedule, and window 4 — which flushes on the 4th entry — can pack
    // marginally better. The win saturates once the window exceeds the
    // number of concurrently in-flight updates.)
    for p in &points[1..] {
        assert!(p.batches > 0, "window {} never flushed a batch", p.window);
        assert!(
            p.apply_batches > 0,
            "window {} never batched applies",
            p.window
        );
        // Every logged entry is either a batch's fence or an elided one.
        assert_eq!(
            p.batches + p.fences_elided,
            p.completed as u64,
            "window {}: staged entries must account for the workload",
            p.window
        );
        // At least half the per-entry fences must be amortized away.
        assert!(
            p.fences_elided * 2 >= p.completed as u64,
            "window {} elided only {} of {} fences",
            p.window,
            p.fences_elided,
            p.completed
        );
    }
}
