//! Behavioural tests for the server library driven through minimal
//! worlds: in-order delivery, gap detection and retransmission requests,
//! duplicate handling, worker-pool parallelism and kernel-level early
//! logging.

use bytes::Bytes;
use pmnet_core::config::{HostProfile, SystemConfig};
use pmnet_core::protocol::{PacketType, PmnetHeader};
use pmnet_core::server::{IdealHandler, RequestHandler, ServerLib};
use pmnet_net::StackProfile;
use pmnet_net::{Addr, EchoHost, LinkSpec, Packet, World};
use pmnet_sim::{Dur, SimRng, Time};

const CLIENT: Addr = Addr(1);
const SERVER: Addr = Addr(9);

/// A jitter-free server profile so wire order survives the stack and the
/// tests below are exact; jittery-stack reordering has its own test.
fn deterministic_profile() -> HostProfile {
    HostProfile {
        kernel_rx: StackProfile::fixed(Dur::micros(12)),
        user_rx: StackProfile::fixed(Dur::micros(7)),
        user_tx: StackProfile::fixed(Dur::micros(6)),
        kernel_tx: StackProfile::fixed(Dur::micros(11)),
        app_overhead: Dur::micros(1),
    }
}

fn world_with_server(
    handler: Box<dyn RequestHandler>,
    workers: usize,
) -> (World, pmnet_sim::NodeId, pmnet_sim::NodeId) {
    let mut w = World::new(17);
    let client = w.add_node(Box::new(EchoHost::sink(CLIENT)));
    let server = w.add_node(Box::new(ServerLib::new(
        SERVER,
        deterministic_profile(),
        workers,
        Dur::micros(100),
        handler,
    )));
    w.connect(client, server, LinkSpec::ten_gbps());
    w.populate_switch_routes();
    (w, client, server)
}

fn update_pkt(seq: u32, payload: &[u8]) -> Packet {
    let h = PmnetHeader::request(PacketType::UpdateReq, 0, seq, CLIENT, SERVER, 0, 1)
        .with_payload(payload);
    Packet::udp(CLIENT, SERVER, 51001, 51000, h.encode(payload))
}

fn bypass_pkt(seq: u32) -> Packet {
    let h = PmnetHeader::request(PacketType::BypassReq, 0, seq, CLIENT, SERVER, 0, 1)
        .with_payload(b"O-read");
    Packet::udp(CLIENT, SERVER, 51001, 51000, h.encode(b"O-read"))
}

#[test]
fn in_order_updates_apply_immediately() {
    let (mut w, client, server) = world_with_server(Box::new(IdealHandler::new()), 4);
    for seq in 0..5 {
        w.inject(client, update_pkt(seq, b"x"));
    }
    w.run_for(Dur::millis(2));
    let s = w.node::<ServerLib>(server);
    assert_eq!(s.counters().updates_applied, 5);
    assert_eq!(s.counters().reordered, 0);
    assert_eq!(s.counters().retrans_sent, 0);
    // One server-ACK per update went back to the client.
    assert_eq!(w.node::<EchoHost>(client).received(), 5);
}

#[test]
fn out_of_order_updates_are_buffered_and_drained_in_order() {
    let (mut w, client, server) = world_with_server(Box::new(IdealHandler::new()), 4);
    // Deliver 0 then 2,3 (gap at 1), then 1 before the gap timer fires.
    w.inject(client, update_pkt(0, b"a"));
    w.run_for(Dur::micros(40));
    w.inject(client, update_pkt(2, b"c"));
    w.inject(client, update_pkt(3, b"d"));
    w.run_for(Dur::micros(40));
    assert_eq!(w.node::<ServerLib>(server).counters().updates_applied, 1);
    assert_eq!(w.node::<ServerLib>(server).counters().reordered, 2);
    w.inject(client, update_pkt(1, b"b"));
    w.run_for(Dur::millis(1));
    let s = w.node::<ServerLib>(server);
    assert_eq!(
        s.counters().updates_applied,
        4,
        "gap filled, buffer drained"
    );
    // The gap was repaired before the detector fired: no Retrans.
    assert_eq!(s.counters().retrans_sent, 0);
    // Audit order: 0,1,2,3.
    let seqs: Vec<u32> = s.audit_log().entries().iter().map(|e| e.seq).collect();
    assert_eq!(seqs, vec![0, 1, 2, 3]);
}

#[test]
fn unfilled_gap_triggers_retrans_requests() {
    let (mut w, client, server) = world_with_server(Box::new(IdealHandler::new()), 4);
    w.inject(client, update_pkt(0, b"a"));
    w.inject(client, update_pkt(3, b"d")); // 1 and 2 missing
    w.run_for(Dur::millis(2));
    let s = w.node::<ServerLib>(server);
    assert_eq!(s.counters().updates_applied, 1);
    // One Retrans per missing seq per detector round; the sink client
    // never repairs the gap, so the detector keeps retrying (as it must
    // when Retrans packets themselves can be lost).
    assert!(s.counters().retrans_sent >= 2, "{:?}", s.counters());
    assert_eq!(s.counters().retrans_sent % 2, 0, "both seqs each round");
    // Client saw: 1 server-ACK + the Retrans rounds.
    assert!(w.node::<EchoHost>(client).received() >= 3);
}

#[test]
fn duplicates_are_dropped_with_make_up_acks() {
    let (mut w, client, server) = world_with_server(Box::new(IdealHandler::new()), 4);
    w.inject(client, update_pkt(0, b"a"));
    w.run_for(Dur::millis(1));
    // The same packet again (e.g. a client timeout resend).
    w.inject(client, update_pkt(0, b"a"));
    w.run_for(Dur::millis(1));
    let s = w.node::<ServerLib>(server);
    assert_eq!(s.counters().updates_applied, 1);
    assert_eq!(s.counters().duplicates_dropped, 1);
    assert_eq!(s.counters().make_up_acks, 1);
    assert_eq!(
        w.node::<EchoHost>(client).received(),
        2,
        "ack + make-up ack"
    );
}

#[test]
fn worker_pool_overlaps_slow_requests() {
    /// A handler with a long fixed service time.
    #[derive(Debug)]
    struct Slow;
    impl RequestHandler for Slow {
        fn handle_update(
            &mut self,
            _c: Addr,
            _s: u16,
            _q: u32,
            _p: &Bytes,
            _r: &mut SimRng,
        ) -> Dur {
            Dur::millis(1)
        }
        fn handle_bypass(&mut self, _p: &Bytes, _r: &mut SimRng) -> (Dur, Option<Bytes>) {
            (Dur::millis(1), Some(Bytes::new()))
        }
        fn applied_seq(&mut self, _c: Addr, _s: u16) -> Option<u32> {
            None
        }
        fn on_crash(&mut self, _r: &mut SimRng) {}
        fn on_recover(&mut self) -> Dur {
            Dur::ZERO
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    // 8 bypass requests, 1 ms each. With 8 workers they overlap; with 1
    // worker they serialize.
    let run = |workers: usize| {
        let (mut w, client, _server) = world_with_server(Box::new(Slow), workers);
        for seq in 0..8 {
            w.inject(client, bypass_pkt(seq));
        }
        w.run_for(Dur::millis(30));
        // Completion visible as replies at the client.
        assert_eq!(
            w.node::<EchoHost>(client).received(),
            8,
            "workers={workers}"
        );
        w.now()
    };
    let parallel = run(8);
    let serial = run(1);
    assert!(
        serial > parallel + Dur::millis(5),
        "1 worker ({serial}) must be much slower than 8 ({parallel})"
    );
}

#[test]
fn early_log_acks_before_user_space_processing() {
    let (mut w, client, server) = {
        let mut w = World::new(23);
        let client = w.add_node(Box::new(EchoHost::sink(CLIENT)));
        let server = w.add_node(Box::new(
            ServerLib::new(
                SERVER,
                HostProfile::kernel_server(),
                4,
                Dur::micros(100),
                Box::new(IdealHandler::new()),
            )
            .with_early_log(100, Vec::new()),
        ));
        w.connect(client, server, LinkSpec::ten_gbps());
        w.populate_switch_routes();
        (w, client, server)
    };
    w.inject(client, update_pkt(0, b"log-me"));
    w.run_for(Dur::millis(2));
    // The client got TWO responses: the kernel-level early-log ack
    // (PmnetAck, logger id 100) and the normal server-ACK.
    assert_eq!(w.node::<EchoHost>(client).received(), 2);
    assert_eq!(w.node::<ServerLib>(server).counters().updates_applied, 1);
}

#[test]
fn crash_wipes_reorder_state_and_recovery_initializes_from_durable_seq() {
    let mut handler = IdealHandler::new();
    handler.record_applied(CLIENT, 0, 9); // durable watermark: seq 9
    let (mut w, client, server) = world_with_server(Box::new(handler), 4);
    // Deliver an already-applied seq after a crash/restore cycle: it must
    // be treated as duplicate based on the durable watermark.
    w.schedule_crash(server, Time::ZERO + Dur::micros(10), Some(Dur::micros(50)));
    w.run_for(Dur::millis(1));
    w.inject(client, update_pkt(5, b"stale"));
    w.inject(client, update_pkt(10, b"fresh"));
    w.run_for(Dur::millis(2));
    let s = w.node::<ServerLib>(server);
    assert_eq!(s.counters().duplicates_dropped, 1, "seq 5 <= watermark 9");
    assert_eq!(s.counters().updates_applied, 1, "seq 10 applied");
}

#[test]
fn jittery_stacks_can_reorder_but_the_server_repairs() {
    // With the real (jittery, hiccuping) kernel profile, wire-ordered
    // packets may cross inside the two-stage stack; the reorder buffer
    // must still deliver them in sequence.
    let mut w = World::new(31);
    let client = w.add_node(Box::new(EchoHost::sink(CLIENT)));
    let server = w.add_node(Box::new(ServerLib::new(
        SERVER,
        HostProfile::kernel_server(),
        4,
        Dur::micros(100),
        Box::new(IdealHandler::new()),
    )));
    w.connect(client, server, LinkSpec::ten_gbps());
    w.populate_switch_routes();
    for seq in 0..50 {
        w.inject(client, update_pkt(seq, b"x"));
    }
    w.run_for(Dur::millis(5));
    let s = w.node::<ServerLib>(server);
    assert_eq!(s.counters().updates_applied, 50);
    let seqs: Vec<u32> = s.audit_log().entries().iter().map(|e| e.seq).collect();
    assert_eq!(seqs, (0..50).collect::<Vec<_>>(), "must apply in order");
}

#[test]
fn recovery_poll_is_sent_to_registered_devices() {
    let cfg = SystemConfig::default();
    let mut w = World::new(29);
    // A fake "device" endpoint that just counts what arrives.
    let device = w.add_node(Box::new(EchoHost::sink(Addr(50))));
    let server = w.add_node(Box::new(
        ServerLib::new(
            SERVER,
            cfg.server,
            4,
            cfg.gap_timeout,
            Box::new(IdealHandler::new()),
        )
        .with_devices(vec![Addr(50)]),
    ));
    w.connect(server, device, LinkSpec::ten_gbps());
    w.populate_switch_routes();
    w.schedule_crash(server, Time::ZERO + Dur::micros(10), Some(Dur::micros(100)));
    w.run_for(Dur::millis(5));
    // The sink never answers with RecoveryDone, so the barrier stays open
    // and the server re-polls with backoff until it hears back.
    let polls = w.node::<EchoHost>(device).received();
    assert!(polls >= 2, "expected backoff re-polls, got {polls}");
    let s = w.node::<ServerLib>(server);
    assert_eq!(s.recovery_pending(), 1, "barrier must still be open");
    let rec = s.recovery().expect("recovered");
    assert!(rec.polled_at >= rec.restored_at);
    assert_eq!(rec.poll_retries, polls - 1);
    assert_eq!(rec.barrier_done_at, Time::MAX);
}
