//! Property tests for the Figure 11 read-cache state machine (with the
//! in-flight counter refinement — see DESIGN.md §7).
//!
//! The model mirrors what a correct server would do: updates queue, each
//! server-ACK applies the oldest in-flight update, and read responses
//! carry the server's current value at pass-through time. Against any
//! interleaving, a cache hit must return the freshest value the device
//! has observed for the key.

use pmnet_core::cache::{CacheState, ReadCache};
use proptest::prelude::*;
use std::collections::{HashMap, VecDeque};

#[derive(Debug, Clone)]
enum Op {
    Update(u8, Vec<u8>),
    ServerAck(u8),
    ReadResponse(u8),
    Lookup(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let key = 0u8..6;
    let val = prop::collection::vec(any::<u8>(), 1..8);
    prop_oneof![
        (key.clone(), val).prop_map(|(k, v)| Op::Update(k, v)),
        key.clone().prop_map(Op::ServerAck),
        key.clone().prop_map(Op::ReadResponse),
        key.prop_map(Op::Lookup),
    ]
}

/// Reference model per key: a correct server plus device-visible truth.
#[derive(Debug, Default, Clone)]
struct ModelEntry {
    /// Value of the most recent update the device saw.
    latest_update: Option<Vec<u8>>,
    /// Updates logged but not yet applied+acked by the server (in order).
    inflight: VecDeque<Vec<u8>>,
    /// The server's current durable value.
    server_value: Option<Vec<u8>>,
}

impl ModelEntry {
    /// The only value a cache hit may legally return: the latest update if
    /// one ever happened, otherwise whatever the server holds.
    fn fresh(&self) -> Option<&Vec<u8>> {
        self.latest_update.as_ref().or(self.server_value.as_ref())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn hits_always_return_the_freshest_observed_value(
        ops in prop::collection::vec(op_strategy(), 0..150),
    ) {
        let mut cache = ReadCache::new(64);
        let mut model: HashMap<u8, ModelEntry> = HashMap::new();

        for op in ops {
            match op {
                Op::Update(k, v) => {
                    cache.on_update(&[k], &v);
                    let e = model.entry(k).or_default();
                    e.latest_update = Some(v.clone());
                    e.inflight.push_back(v);
                }
                Op::ServerAck(k) => {
                    let e = model.entry(k).or_default();
                    // A correct server only acks work it has applied.
                    if let Some(v) = e.inflight.pop_front() {
                        e.server_value = Some(v);
                        cache.on_server_ack(&[k]);
                    }
                }
                Op::ReadResponse(k) => {
                    // A pass-through read reply carries the server's
                    // current value (found == true only if one exists).
                    let e = model.entry(k).or_default();
                    if let Some(v) = e.server_value.clone() {
                        cache.on_read_response(&[k], &v);
                    }
                }
                Op::Lookup(k) => {
                    let hit = cache.lookup(&[k]);
                    let e = model.get(&k).cloned().unwrap_or_default();
                    if let Some(value) = hit {
                        let fresh = e.fresh().expect("hit on never-written key");
                        prop_assert_eq!(
                            &value, fresh,
                            "stale value served for key {} (inflight={})",
                            k, e.inflight.len()
                        );
                    }
                    // Conversely, a Pending/Persisted single-writer entry
                    // must hit (cache effectiveness, not just safety).
                    if e.inflight.len() <= 1 && e.latest_update.is_some() {
                        // Only guaranteed if the key was admitted (the
                        // 64-entry cache can refuse under pressure), so no
                        // assertion on misses here.
                    }
                }
            }
        }
    }

    #[test]
    fn read_responses_never_fill_keys_with_inflight_updates(
        ops in prop::collection::vec(op_strategy(), 0..150),
        capacity in 1usize..5,
    ) {
        // The in-flight fill rule, tested against *device-visible* truth:
        // every `on_update` call counts (the device logs the update whether
        // or not the cache admitted the key), and a read response models a
        // server snapshot of arbitrary age. While any update to a key is
        // still in flight, a read response must never install a value the
        // cache will later serve — tiny capacities force the refusal path.
        let mut cache = ReadCache::new(capacity);
        let mut inflight: HashMap<u8, u32> = HashMap::new();
        let mut nonce = 0u8;
        for op in ops {
            match op {
                Op::Update(k, v) => {
                    cache.on_update(&[k], &v);
                    *inflight.entry(k).or_default() += 1;
                }
                Op::ServerAck(k) => {
                    let c = inflight.entry(k).or_default();
                    if *c > 0 {
                        *c -= 1;
                        cache.on_server_ack(&[k]);
                    }
                }
                Op::ReadResponse(k) => {
                    // A distinct sentinel per response stands in for a
                    // stale server snapshot (the response may have left
                    // the server before the in-flight updates applied).
                    nonce = nonce.wrapping_add(1);
                    let sentinel = vec![0xEE, k, nonce];
                    let fills_before = cache.counters().read_fills;
                    cache.on_read_response(&[k], &sentinel);
                    if inflight.get(&k).copied().unwrap_or(0) > 0 {
                        prop_assert_eq!(
                            cache.counters().read_fills, fills_before,
                            "read response filled key {} with {} update(s) in flight",
                            k, inflight[&k]
                        );
                        prop_assert!(
                            cache.lookup(&[k]).as_deref() != Some(&sentinel[..]),
                            "stale snapshot served for key {}", k
                        );
                    }
                }
                Op::Lookup(k) => {
                    let _ = cache.lookup(&[k]);
                }
            }
        }
    }

    #[test]
    fn states_follow_the_refined_figure_11_graph(
        ops in prop::collection::vec(op_strategy(), 0..100),
    ) {
        let mut cache = ReadCache::new(64);
        let mut inflight: HashMap<u8, u32> = HashMap::new();
        let mut prev: HashMap<u8, CacheState> = HashMap::new();
        for op in ops {
            let key = match op {
                Op::Update(k, _) | Op::ServerAck(k) | Op::ReadResponse(k) | Op::Lookup(k) => k,
            };
            let before = prev.get(&key).copied().unwrap_or(CacheState::Invalid);
            match &op {
                Op::Update(k, v) => {
                    cache.on_update(&[*k], v);
                    *inflight.entry(*k).or_default() += 1;
                }
                Op::ServerAck(k) => {
                    let c = inflight.entry(*k).or_default();
                    if *c > 0 {
                        *c -= 1;
                        cache.on_server_ack(&[*k]);
                    }
                }
                Op::ReadResponse(k) => cache.on_read_response(&[*k], b"srv"),
                Op::Lookup(k) => {
                    let _ = cache.lookup(&[*k]);
                }
            }
            let after = cache.state(&[key]);
            use CacheState::*;
            let legal = match (&op, before, after) {
                // T1/T3: first in-flight update -> Pending.
                (Op::Update(..), Invalid | Persisted, Pending) => true,
                // Full cache may refuse to admit a new key.
                (Op::Update(..), Invalid, Invalid) => true,
                // T4/T5: overlapping updates -> Stale.
                (Op::Update(..), Pending | Stale, Stale) => true,
                // T2: ack persists Pending.
                (Op::ServerAck(..), Pending, Persisted) => true,
                // T6 (refined): Stale drains to Invalid only at zero
                // in-flight; otherwise remains Stale.
                (Op::ServerAck(..), Stale, Invalid | Stale) => true,
                (Op::ServerAck(..), s, t) if s == t => true,
                // Read responses fill idle Invalid entries only.
                (Op::ReadResponse(..), Invalid, Persisted | Invalid) => true,
                (Op::ReadResponse(..), s, t) if s == t => true,
                // Lookups never change state.
                (Op::Lookup(..), s, t) if s == t => true,
                _ => false,
            };
            prop_assert!(
                legal,
                "illegal transition {:?}: {:?} -> {:?}",
                op, before, after
            );
            prev.insert(key, after);
        }
    }
}
