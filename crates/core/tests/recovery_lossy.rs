//! Deterministic single-drop recovery scenarios: each test surgically
//! drops exactly one leg of the recovery handshake — the `RecoveryPoll`,
//! the redo resend, or the redo server-ACK — and proves the retry
//! machinery converges anyway: every client-acked update applied exactly
//! once, every device log drained, the recovery barrier closed.
//!
//! The drops are engineered with the administrative link state rather
//! than probabilistic loss: a downed link drops packets at *transmit*
//! time but leaves already-transmitted packets in flight, so downing the
//! device↔server link at the right instant kills one specific packet.

use pmnet_core::audit;
use pmnet_core::client::ClientLib;
use pmnet_core::device::PmnetDevice;
use pmnet_core::server::ServerLib;
use pmnet_core::system::{BuiltSystem, DesignPoint, MicroSource, SystemBuilder};
use pmnet_core::SystemConfig;
use pmnet_net::PortNo;
use pmnet_sim::{Dur, Time};

const CRASH_AT: Dur = Dur::micros(200);
const DOWNTIME: Dur = Dur::millis(1);

/// One client, forty updates, the PMNet switch design. The client
/// timeout is tightened so link-down collateral heals quickly.
fn build(seed: u64) -> BuiltSystem {
    let cfg = SystemConfig {
        client_timeout: Dur::millis(1),
        ..SystemConfig::default()
    };
    let mut sys = SystemBuilder::new(DesignPoint::PmnetSwitch, cfg)
        .client(Box::new(MicroSource::updates(40, 64)))
        .build(seed);
    for &c in &sys.clients.clone() {
        sys.world.start_node(c);
    }
    sys
}

/// `path = [merge, device, server]` for the PmnetSwitch design; the
/// recovery handshake crosses the last hop.
fn last_hop(sys: &BuiltSystem) -> (pmnet_sim::NodeId, pmnet_sim::NodeId) {
    let n = sys.path.len();
    (sys.path[n - 2], sys.path[n - 1])
}

fn all_finished(sys: &BuiltSystem) -> bool {
    sys.clients
        .iter()
        .all(|&c| sys.world.node::<ClientLib>(c).is_finished())
}

/// Runs until the workload completes, then drains and checks the full
/// convergence contract.
fn finish_and_check_convergence(sys: &mut BuiltSystem) {
    // `run_until` leaves `now` at the last processed event, so drive an
    // explicit cursor and stop when the world goes quiescent.
    let deadline = Time::ZERO + Dur::millis(100);
    let mut cursor = sys.world.now();
    while cursor < deadline && !all_finished(sys) {
        cursor = (cursor + Dur::micros(250)).min(deadline);
        sys.world.run_until(cursor);
        if sys.world.pending_events() == 0 {
            break;
        }
    }
    assert!(all_finished(sys), "workload wedged before the deadline");
    // Settle: entry retries, recovery resends and make-up acks drain.
    sys.world.run_for(Dur::millis(30));

    let acked = sys.acked_updates();
    assert_eq!(acked.len(), 40, "every update must be acknowledged");
    let server = sys.world.node::<ServerLib>(sys.server);
    let report = audit::verify(server.audit_log(), &acked)
        .expect("exactly-once, in-order application of every acked update");
    assert!(report.applied >= 40);
    assert_eq!(
        sys.stranded_log_entries(),
        0,
        "device logs must drain to empty"
    );
    assert_eq!(
        server.recovery_pending(),
        0,
        "recovery barrier must be closed"
    );
    let rec = server.recovery().expect("server recovered");
    assert!(
        rec.barrier_done_at < Time::MAX,
        "barrier close time recorded"
    );
}

/// Drop the first `RecoveryPoll`: the device↔server link is down across
/// the restore instant, so the poll transmitted at restore dies. The
/// server's backoff re-poll heals the handshake.
#[test]
fn dropped_recovery_poll_is_healed_by_server_repoll() {
    let mut sys = build(71);
    let (dev, server) = last_hop(&sys);
    let server_id = sys.server;
    sys.world.run_until(Time::ZERO + CRASH_AT);
    let crash_at = sys.world.now() + Dur::micros(10);
    sys.world
        .schedule_crash(server_id, crash_at, Some(DOWNTIME));
    // Down the link before restore; the poll fired at restore is dropped
    // at transmit. Bring it back up before the first backoff re-poll
    // (500 us) so the second poll succeeds.
    sys.world.run_until(crash_at + Dur::micros(50));
    sys.world.set_link_up(dev, server, false);
    sys.world.run_until(crash_at + DOWNTIME + Dur::micros(200));
    sys.world.set_link_up(dev, server, true);

    finish_and_check_convergence(&mut sys);
    let s = sys.world.node::<ServerLib>(server_id);
    let rec = s.recovery().expect("recovered");
    assert!(rec.polled_at < Time::MAX, "first poll must have been sent");
    assert!(
        rec.poll_retries >= 1,
        "the dropped poll must force a backoff re-poll (retries={})",
        rec.poll_retries
    );
}

/// Drop the redo resends: the link goes down the instant the first poll
/// hits the wire (the in-flight poll still arrives — `ports.transmit`
/// checks the administrative state at transmit time, not at delivery),
/// so every redo the device sends in response dies. The device's resend
/// backoff re-fires them once the link heals.
#[test]
fn dropped_redo_resend_is_healed_by_device_refire() {
    let mut sys = build(73);
    let (dev, server) = last_hop(&sys);
    let server_id = sys.server;
    sys.world.run_until(Time::ZERO + CRASH_AT);
    let crash_at = sys.world.now() + Dur::micros(10);
    sys.world
        .schedule_crash(server_id, crash_at, Some(DOWNTIME));
    // Run to the restore instant: the poll timer has fired (IdealHandler
    // recovers instantly) but the poll itself is still queued behind the
    // server's host-stack delay. Step until it is actually transmitted
    // (the server's port tx counter moves), THEN cut the link: the poll
    // is in flight and survives, the redos it triggers are all dropped.
    sys.world.run_until(crash_at + DOWNTIME);
    {
        let s = sys.world.node::<ServerLib>(server_id);
        let rec = s.recovery().expect("restored");
        assert!(rec.polled_at < Time::MAX, "poll timer must have fired");
    }
    let dev_id = sys.devices[0];
    assert!(
        sys.world.node::<PmnetDevice>(dev_id).log_len() > 0,
        "entries must be staged in the device log at restore"
    );
    let baseline = sys.world.ports().counters(server, PortNo(0)).tx_packets;
    let step_deadline = sys.world.now() + Dur::millis(2);
    let mut cursor = sys.world.now();
    while sys.world.ports().counters(server, PortNo(0)).tx_packets == baseline {
        assert!(cursor < step_deadline, "poll never reached the wire");
        cursor += Dur::nanos(500);
        sys.world.run_until(cursor);
    }
    sys.world.set_link_up(dev, server, false);
    sys.world.run_for(Dur::micros(200));
    sys.world.set_link_up(dev, server, true);

    finish_and_check_convergence(&mut sys);
    let d = sys.world.node::<PmnetDevice>(dev_id);
    assert!(
        d.counters().recovery_resend_retries >= 1,
        "dropped redo resends must be re-fired by the backoff timer: {:?}",
        d.counters()
    );
}

/// Drop the redo server-ACK: the first resend is allowed through (the
/// link goes down only once the resend is in flight), the server applies
/// it, but its ACK dies. The device re-fires the resend, the server
/// dedups it and answers with a make-up ACK — exactly-once apply, log
/// still drains.
#[test]
fn dropped_redo_ack_is_healed_by_dedup_and_makeup_ack() {
    let mut sys = build(79);
    let (dev, server) = last_hop(&sys);
    let server_id = sys.server;
    sys.world.run_until(Time::ZERO + CRASH_AT);
    let crash_at = sys.world.now() + Dur::micros(10);
    sys.world
        .schedule_crash(server_id, crash_at, Some(DOWNTIME));
    sys.world.run_until(crash_at + DOWNTIME);
    // Step in fine increments until the server has applied the first
    // redo. Its ACK is still queued behind the server's host-stack delay
    // (microseconds, far above the stepping granularity), so cutting the
    // link now drops the ACK while the apply has already happened.
    let dev_id = sys.devices[0];
    let step_deadline = sys.world.now() + Dur::millis(2);
    let mut cursor = sys.world.now();
    loop {
        let applied = sys
            .world
            .node::<ServerLib>(server_id)
            .recovery()
            .map_or(0, |r| r.redo_applied);
        if applied > 0 {
            break;
        }
        assert!(cursor < step_deadline, "no redo applied after restore");
        cursor += Dur::nanos(500);
        sys.world.run_until(cursor);
    }
    sys.world.set_link_up(dev, server, false);
    sys.world.run_for(Dur::micros(200));
    sys.world.set_link_up(dev, server, true);

    finish_and_check_convergence(&mut sys);
    let s = sys.world.node::<ServerLib>(server_id);
    let rec = s.recovery().expect("recovered");
    assert!(rec.redo_applied >= 1, "first resend must have been applied");
    assert!(
        s.counters().duplicates_dropped >= 1,
        "the re-fired resend must be absorbed by dedup: {:?}",
        s.counters()
    );
    let d = sys.world.node::<PmnetDevice>(dev_id);
    assert!(
        d.counters().recovery_resend_retries >= 1,
        "the unconfirmed resend must have been re-fired: {:?}",
        d.counters()
    );
}
