//! Concurrent-apply acceptance campaign: 100+ lossy-recovery plans with
//! the server applying on four workers, so every server kill lands while
//! the pool holds staged updates.
//!
//! ```text
//! cargo run --release -p pmnet-chaos --features model --example concurrent_apply
//! ```
//!
//! With the `model` feature on, every run is additionally checked in the
//! model's concurrent-history durable-linearizability mode. The example
//! exits non-zero (panics) on any invariant violation, on a vacuous
//! campaign (no redo replays — i.e. the kills never actually landed), or
//! if the `apply_threads: 1` pass fails to reproduce the sequential
//! lossy-recovery campaign bit for bit.

use pmnet_chaos::{run_concurrent_apply_campaign, run_lossy_recovery_campaign};

fn main() {
    const SEED: u64 = 2026;
    const PLANS_PER_DESIGN: usize = 50; // x2 designs = 100 plans
    const THREADS: u32 = 4;

    let sched_seed = pmnet_core::config::ApplyConfig::sched_seed_from_env(SEED);
    let start = std::time::Instant::now();
    let out = run_concurrent_apply_campaign(SEED, PLANS_PER_DESIGN, THREADS);
    let elapsed = start.elapsed();

    assert_eq!(out.runs.len(), 2 * PLANS_PER_DESIGN);
    if out.failure_count() != 0 {
        for f in &out.failures {
            eprintln!("--- failing artifact (PMNET_APPLY_SCHED_SEED base {sched_seed}) ---");
            eprintln!("{f}");
            eprintln!("violations: {:?}", f.replay().violations);
        }
        panic!(
            "{} of {} concurrent-apply runs violated an invariant \
             (replay with the artifacts above; scheduler seed base {sched_seed})",
            out.failure_count(),
            out.runs.len(),
        );
    }

    // Not vacuous: the kills must have forced real recovery replays and
    // the workload must have retried through the loss bursts.
    let redo: u64 = out.runs.iter().map(|r| r.verdict.redo_applied).sum();
    let retries: u64 = out.runs.iter().map(|r| r.verdict.client_retries).sum();
    assert!(redo > 0, "no run replayed a redo log — kills never landed");
    assert!(retries > 0, "no run retransmitted under loss");

    // Determinism: the seeded pool scheduler must replay bit-identically.
    let again = run_concurrent_apply_campaign(SEED, PLANS_PER_DESIGN, THREADS);
    assert_eq!(out.digest, again.digest, "concurrent campaign must replay");

    // Sequential equivalence: one apply thread is the old path, bit for
    // bit, against the plain lossy-recovery entry point.
    let seq = run_concurrent_apply_campaign(SEED, 10, 1);
    let golden = run_lossy_recovery_campaign(SEED, 10);
    assert_eq!(
        seq.digest, golden.digest,
        "apply_threads: 1 must match the sequential campaign"
    );

    println!(
        "model feature: {} | {} runs @ {THREADS} apply threads, 0 failures, \
         {redo} redo applies, {retries} retries, digest {:#018x}, {elapsed:.2?} wall",
        cfg!(feature = "model"),
        out.runs.len(),
        out.digest,
    );
}
