//! Wall-clock timing for a representative campaign, used to measure the
//! model-checker overhead quoted in EXPERIMENTS.md:
//!
//! ```text
//! cargo run --release -p pmnet-chaos --example campaign_timing
//! cargo run --release -p pmnet-chaos --features model --example campaign_timing
//! ```
//!
//! The first build runs the bare chaos invariants; the second records
//! every run and checks it against the `pmnet-model` reference.

use pmnet_chaos::{run_campaign, CampaignConfig};

fn main() {
    let cfg = CampaignConfig {
        seed: 7,
        plans_per_design: 34,
        ..CampaignConfig::default()
    };
    // Warm-up pass so allocator/page-cache effects don't skew the timing.
    let _ = run_campaign(&cfg);
    let start = std::time::Instant::now();
    let outcome = run_campaign(&cfg);
    let elapsed = start.elapsed();
    println!(
        "model feature: {} | {} runs, {} failures, digest {:#018x}, {:.2?} wall",
        cfg!(feature = "model"),
        outcome.runs.len(),
        outcome.failure_count(),
        outcome.digest,
        elapsed,
    );
}
