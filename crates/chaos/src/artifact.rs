//! Replayable failure artifacts.
//!
//! A failing (usually shrunk) plan is only useful if someone else can run
//! it. An [`Artifact`] bundles everything a replay needs — the seed, the
//! design point, whether the deliberate dedup bug was planted, and the
//! plan itself — in the same line-oriented text format as the plan DSL, so
//! it can live in a bug report or a test fixture and be re-executed with
//! [`Artifact::replay`].

use std::fmt;
use std::str::FromStr;

use pmnet_core::system::DesignPoint;
use pmnet_telemetry::flight::FlightDump;

use crate::plan::FaultPlan;
use crate::runner::{run, Scenario, Verdict};

/// A self-contained, replayable description of a chaos failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifact {
    /// Seed of the failing run.
    pub seed: u64,
    /// Design point the failure occurred on.
    pub design: DesignPoint,
    /// Whether the deliberate dedup bug was planted.
    pub dedup_bug: bool,
    /// Doorbell batching window the run used (1 = unbatched). Emitted in
    /// the text format only when not 1, so pre-batching artifacts parse
    /// and render unchanged.
    pub batch_window: u32,
    /// Apply worker threads the run used (1 = sequential). Emitted in the
    /// text format only when not 1, so pre-pool artifacts parse and
    /// render unchanged.
    pub apply_threads: u32,
    /// The (minimized) fault plan.
    pub plan: FaultPlan,
    /// Flight-recorder timeline from the failing run, when one was
    /// captured. Purely diagnostic: replay ignores it (the run rebuilds
    /// its own), but a bug report carrying the artifact shows what the
    /// protocol was doing when the invariant fired.
    pub flight: Option<FlightDump>,
}

fn design_name(d: DesignPoint) -> String {
    match d {
        DesignPoint::PmnetSwitch => "pmnet-switch".into(),
        DesignPoint::PmnetNic => "pmnet-nic".into(),
        DesignPoint::ClientServer => "client-server".into(),
        DesignPoint::PmnetReplicated { devices } => format!("pmnet-replicated:{devices}"),
        DesignPoint::ClientServerReplicated { replicas } => {
            format!("client-server-replicated:{replicas}")
        }
        DesignPoint::ServerSideLog { replicas } => format!("server-side-log:{replicas}"),
        DesignPoint::ClientSideLog { replicas } => format!("client-side-log:{replicas}"),
        DesignPoint::PmnetSharded { shards } => format!("pmnet-sharded:{shards}"),
    }
}

fn parse_design(s: &str) -> Result<DesignPoint, String> {
    let (name, arg) = match s.split_once(':') {
        Some((n, a)) => (n, Some(a)),
        None => (s, None),
    };
    let count = |what: &str| -> Result<u8, String> {
        arg.ok_or_else(|| format!("design `{s}`: missing :{what}"))?
            .parse()
            .map_err(|_| format!("design `{s}`: bad {what}"))
    };
    match name {
        "pmnet-switch" => Ok(DesignPoint::PmnetSwitch),
        "pmnet-nic" => Ok(DesignPoint::PmnetNic),
        "client-server" => Ok(DesignPoint::ClientServer),
        "pmnet-replicated" => Ok(DesignPoint::PmnetReplicated {
            devices: count("devices")?,
        }),
        "client-server-replicated" => Ok(DesignPoint::ClientServerReplicated {
            replicas: count("replicas")?,
        }),
        "server-side-log" => Ok(DesignPoint::ServerSideLog {
            replicas: count("replicas")?,
        }),
        "client-side-log" => Ok(DesignPoint::ClientSideLog {
            replicas: count("replicas")?,
        }),
        "pmnet-sharded" => Ok(DesignPoint::PmnetSharded {
            shards: count("shards")?,
        }),
        _ => Err(format!("unknown design `{s}`")),
    }
}

impl Artifact {
    /// Bundles a failing run for replay.
    pub fn new(scenario: &Scenario, plan: FaultPlan) -> Artifact {
        Artifact {
            seed: scenario.seed,
            design: scenario.design,
            dedup_bug: scenario.plant_dedup_bug,
            batch_window: scenario.batch_window,
            apply_threads: scenario.apply_threads,
            plan,
            flight: None,
        }
    }

    /// Attaches the failing run's flight-recorder timeline (dropped when
    /// `flight` is `None` or the dump recorded nothing).
    pub fn with_flight(mut self, flight: Option<FlightDump>) -> Artifact {
        self.flight = flight.filter(|d| !d.is_empty());
        self
    }

    /// The scenario this artifact replays under (the standard chaos
    /// workload with this artifact's seed, design and bug flag).
    pub fn scenario(&self) -> Scenario {
        let mut s = Scenario::standard(self.design, self.seed);
        s.plant_dedup_bug = self.dedup_bug;
        s.batch_window = self.batch_window.max(1);
        s.apply_threads = self.apply_threads.max(1);
        s
    }

    /// Re-executes the failure from nothing but this artifact. The run is
    /// deterministic, so a genuine artifact reproduces its verdict
    /// exactly.
    pub fn replay(&self) -> Verdict {
        run(&self.scenario(), &self.plan)
    }
}

impl fmt::Display for Artifact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# pmnet-chaos replay artifact")?;
        writeln!(f, "seed={}", self.seed)?;
        writeln!(f, "design={}", design_name(self.design))?;
        writeln!(f, "dedup_bug={}", self.dedup_bug)?;
        if self.batch_window != 1 {
            writeln!(f, "batch_window={}", self.batch_window)?;
        }
        if self.apply_threads != 1 {
            writeln!(f, "apply_threads={}", self.apply_threads)?;
        }
        write!(f, "{}", self.plan)?;
        if let Some(dump) = &self.flight {
            // The flight header starts with `#`, every timeline line with
            // `flight ` — both are unambiguous against the plan DSL, so
            // the section round-trips through `FromStr`.
            write!(f, "{dump}")?;
        }
        Ok(())
    }
}

impl FromStr for Artifact {
    type Err = String;

    fn from_str(text: &str) -> Result<Artifact, String> {
        let mut seed = None;
        let mut design = None;
        let mut dedup_bug = false;
        let mut batch_window = 1u32;
        let mut apply_threads = 1u32;
        let mut plan_lines = String::new();
        let mut flight_lines = String::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line.starts_with("flight ") {
                flight_lines.push_str(line);
                flight_lines.push('\n');
                continue;
            }
            if let Some(v) = line.strip_prefix("seed=") {
                seed = Some(v.parse().map_err(|_| format!("bad seed line `{line}`"))?);
            } else if let Some(v) = line.strip_prefix("design=") {
                design = Some(parse_design(v)?);
            } else if let Some(v) = line.strip_prefix("dedup_bug=") {
                dedup_bug = v
                    .parse()
                    .map_err(|_| format!("bad dedup_bug line `{line}`"))?;
            } else if let Some(v) = line.strip_prefix("batch_window=") {
                batch_window = v
                    .parse()
                    .map_err(|_| format!("bad batch_window line `{line}`"))?;
            } else if let Some(v) = line.strip_prefix("apply_threads=") {
                apply_threads = v
                    .parse()
                    .map_err(|_| format!("bad apply_threads line `{line}`"))?;
            } else {
                plan_lines.push_str(line);
                plan_lines.push('\n');
            }
        }
        let flight = if flight_lines.is_empty() {
            None
        } else {
            Some(flight_lines.parse::<FlightDump>()?)
        };
        Ok(Artifact {
            seed: seed.ok_or("artifact: missing seed= line")?,
            design: design.ok_or("artifact: missing design= line")?,
            dedup_bug,
            batch_window,
            apply_threads,
            plan: plan_lines.parse()?,
            flight,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Fault, LinkTarget};
    use pmnet_sim::Dur;

    fn sample() -> Artifact {
        let mut plan = FaultPlan::new();
        plan.push(
            Dur::micros(50),
            Fault::DuplicateBurst {
                link: LinkTarget::Backbone(0),
                permille: 500,
                dur: Dur::millis(2),
            },
        );
        Artifact {
            seed: 77,
            design: DesignPoint::PmnetSwitch,
            dedup_bug: true,
            batch_window: 1,
            apply_threads: 1,
            plan,
            flight: None,
        }
    }

    #[test]
    fn batch_window_round_trips_and_defaults_to_one() {
        let mut a = sample();
        a.batch_window = 16;
        let text = a.to_string();
        assert!(text.contains("batch_window=16"));
        let back: Artifact = text.parse().expect("parse back");
        assert_eq!(a, back);
        assert_eq!(back.scenario().batch_window, 16);
        // Window 1 is left implicit so pre-batching artifacts stay exact.
        let plain = sample();
        assert!(!plain.to_string().contains("batch_window"));
        let back: Artifact = plain.to_string().parse().expect("parse");
        assert_eq!(back.batch_window, 1);
    }

    #[test]
    fn apply_threads_round_trips_and_defaults_to_one() {
        let mut a = sample();
        a.apply_threads = 4;
        let text = a.to_string();
        assert!(text.contains("apply_threads=4"));
        let back: Artifact = text.parse().expect("parse back");
        assert_eq!(a, back);
        assert_eq!(back.scenario().apply_threads, 4);
        // Thread count 1 is left implicit so pre-pool artifacts stay
        // exact.
        let plain = sample();
        assert!(!plain.to_string().contains("apply_threads"));
        let back: Artifact = plain.to_string().parse().expect("parse");
        assert_eq!(back.apply_threads, 1);
    }

    #[test]
    fn text_round_trip_is_exact() {
        let a = sample();
        let text = a.to_string();
        let back: Artifact = text.parse().expect("parse back");
        assert_eq!(a, back);
    }

    #[test]
    fn design_names_round_trip() {
        for d in [
            DesignPoint::PmnetSwitch,
            DesignPoint::PmnetNic,
            DesignPoint::ClientServer,
            DesignPoint::PmnetReplicated { devices: 3 },
            DesignPoint::ClientServerReplicated { replicas: 2 },
            DesignPoint::ServerSideLog { replicas: 2 },
            DesignPoint::ClientSideLog { replicas: 3 },
            DesignPoint::PmnetSharded { shards: 2 },
        ] {
            assert_eq!(parse_design(&design_name(d)).unwrap(), d);
        }
        assert!(parse_design("abacus").is_err());
        assert!(parse_design("pmnet-replicated").is_err());
    }

    #[test]
    fn missing_header_lines_are_errors() {
        assert!("design=pmnet-switch".parse::<Artifact>().is_err());
        assert!("seed=1".parse::<Artifact>().is_err());
    }

    #[test]
    fn flight_dump_round_trips_through_the_text_format() {
        // A replay of the planted-bug sample fails, so its verdict
        // carries a real flight timeline; embed it and round-trip.
        let verdict = sample().replay();
        assert!(!verdict.passed);
        let dump = verdict
            .flight
            .expect("failing verdict captures a flight dump");
        assert!(!dump.is_empty(), "chaos runs record protocol events");
        let a = sample().with_flight(Some(dump));
        let text = a.to_string();
        let back: Artifact = text.parse().expect("parse back with flight section");
        assert_eq!(a, back);
        // The embedded timeline is also parseable on its own.
        let flight_text = a.flight.as_ref().unwrap().to_string();
        assert!(flight_text.parse::<FlightDump>().is_ok());
    }

    #[test]
    fn empty_flight_dumps_are_not_embedded() {
        let a = sample().with_flight(Some(FlightDump::default()));
        assert!(a.flight.is_none());
        assert_eq!(a, sample());
    }

    #[test]
    fn replay_reproduces_the_failure_deterministically() {
        let a = sample();
        let v1 = a.replay();
        let v2 = a.replay();
        assert_eq!(v1, v2);
        assert!(!v1.passed, "the planted dedup bug must reproduce");
        // The same plan with the bug absent passes: the artifact captures
        // the bug flag, not just the plan.
        let mut clean = a.clone();
        clean.dedup_bug = false;
        assert!(clean.replay().passed);
    }
}
