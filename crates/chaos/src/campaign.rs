//! Seeded exploration campaigns: many generated plans across several
//! design points, with a determinism digest over every verdict.
//!
//! A campaign is the harness's outer loop: derive a plan seed and a run
//! seed from the campaign seed, generate a plan, execute it, collect the
//! verdict. The FNV-1a digest folds every verdict's digest line, so two
//! campaigns from the same seed can be compared with a single `u64` —
//! the bit-identical-replay guarantee the whole tool rests on.

use pmnet_core::system::DesignPoint;
use pmnet_sim::{Dur, SimRng};

use crate::artifact::Artifact;
use crate::generate::{
    generate_failover_plan, generate_lossy_recovery_plan, generate_plan, Intensity, Topology,
};
use crate::plan::FaultPlan;
use crate::runner::{run, Scenario, Verdict};

/// Parameters of an exploration campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Master seed; everything else derives from it.
    pub seed: u64,
    /// Plans generated (and executed) per design point.
    pub plans_per_design: usize,
    /// Generator aggressiveness.
    pub intensity: Intensity,
    /// Design points to explore.
    pub designs: Vec<DesignPoint>,
    /// Fault-injection window of each run.
    pub horizon: Dur,
    /// Plant the deliberate dedup bug in every run (for harness
    /// self-tests).
    pub plant_dedup_bug: bool,
}

impl Default for CampaignConfig {
    /// The acceptance-campaign shape: the paper's two PMNet placements
    /// plus the baseline.
    fn default() -> CampaignConfig {
        CampaignConfig {
            seed: 1,
            plans_per_design: 70,
            intensity: Intensity::Medium,
            designs: vec![
                DesignPoint::PmnetSwitch,
                DesignPoint::PmnetNic,
                DesignPoint::ClientServer,
            ],
            horizon: Dur::millis(8),
            plant_dedup_bug: false,
        }
    }
}

/// One executed run of a campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignRun {
    /// Design point of the run.
    pub design: DesignPoint,
    /// Index within the design's plan sequence.
    pub index: usize,
    /// Seed the scenario ran under.
    pub seed: u64,
    /// The verdict.
    pub verdict: Verdict,
}

/// Everything a campaign produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignOutcome {
    /// Every run, in execution order.
    pub runs: Vec<CampaignRun>,
    /// Replay artifacts for every failing run (un-shrunk; feed them to
    /// [`crate::shrink::shrink_failure`]).
    pub failures: Vec<Artifact>,
    /// FNV-1a digest over all verdict digest lines, in order. Equal
    /// digests mean bit-identical campaign outcomes.
    pub digest: u64,
}

impl CampaignOutcome {
    /// Runs that violated an invariant.
    pub fn failure_count(&self) -> usize {
        self.failures.len()
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(digest: u64, bytes: &[u8]) -> u64 {
    let mut d = digest;
    for &b in bytes {
        d ^= u64::from(b);
        d = d.wrapping_mul(FNV_PRIME);
    }
    d
}

/// One fully-generated run awaiting execution. Plans are generated
/// serially (RNG fork order is part of the determinism contract) and
/// executed in any order; the merge step restores execution order.
struct CampaignJob {
    design: DesignPoint,
    index: usize,
    seed: u64,
    scenario: Scenario,
    plan: FaultPlan,
}

/// Worker-thread count for campaign execution: the `PMNET_CHAOS_THREADS`
/// environment variable if set (values < 1 mean serial), otherwise the
/// machine's available parallelism.
fn campaign_threads() -> usize {
    match std::env::var("PMNET_CHAOS_THREADS") {
        Ok(v) => v.trim().parse::<usize>().unwrap_or(1).max(1),
        Err(_) => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Runs every job and returns verdicts in job order.
///
/// Each job is executed on exactly one thread with its own single-threaded
/// simulator, so a job's verdict is bit-identical regardless of the thread
/// count; jobs are striped across workers and the results re-indexed, so
/// the merged campaign outcome (and its digest) is too.
fn execute_jobs(jobs: &[CampaignJob], threads: usize) -> Vec<Verdict> {
    let threads = threads.min(jobs.len().max(1));
    if threads <= 1 {
        return jobs.iter().map(|j| run(&j.scenario, &j.plan)).collect();
    }
    let mut verdicts: Vec<Option<Verdict>> = jobs.iter().map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                s.spawn(move || {
                    jobs.iter()
                        .enumerate()
                        .skip(t)
                        .step_by(threads)
                        .map(|(i, j)| (i, run(&j.scenario, &j.plan)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            for (i, v) in h.join().expect("campaign worker panicked") {
                verdicts[i] = Some(v);
            }
        }
    });
    verdicts
        .into_iter()
        .map(|v| v.expect("striped execution covers every job"))
        .collect()
}

/// Merges executed jobs into an outcome, folding the digest in job order.
fn merge_outcome(jobs: Vec<CampaignJob>, verdicts: Vec<Verdict>) -> CampaignOutcome {
    let mut runs = Vec::with_capacity(jobs.len());
    let mut failures = Vec::new();
    let mut digest = FNV_OFFSET;
    for (job, verdict) in jobs.into_iter().zip(verdicts) {
        digest = fnv1a(digest, verdict.digest_line().as_bytes());
        if !verdict.passed {
            failures
                .push(Artifact::new(&job.scenario, job.plan).with_flight(verdict.flight.clone()));
        }
        runs.push(CampaignRun {
            design: job.design,
            index: job.index,
            seed: job.seed,
            verdict,
        });
    }
    CampaignOutcome {
        runs,
        failures,
        digest,
    }
}

fn campaign_with_threads(cfg: &CampaignConfig, threads: usize) -> CampaignOutcome {
    let mut meta = SimRng::seed(cfg.seed);
    let mut jobs = Vec::with_capacity(cfg.designs.len() * cfg.plans_per_design);
    for (di, &design) in cfg.designs.iter().enumerate() {
        let mut design_rng = meta.fork(1 + di as u64);
        let base = Scenario::standard(design, 0);
        let topo = Topology::for_design(design, base.clients);
        for index in 0..cfg.plans_per_design {
            let mut plan_rng = design_rng.fork(index as u64);
            let seed = plan_rng.uniform_u64(0..u64::MAX);
            let plan = generate_plan(&mut plan_rng, &topo, cfg.intensity, cfg.horizon);
            let mut scenario = Scenario::standard(design, seed);
            scenario.plant_dedup_bug = cfg.plant_dedup_bug;
            jobs.push(CampaignJob {
                design,
                index,
                seed,
                scenario,
                plan,
            });
        }
    }
    let verdicts = execute_jobs(&jobs, threads);
    merge_outcome(jobs, verdicts)
}

/// Executes the campaign. Fully determined by `cfg`: plans run in
/// parallel across worker threads (see [`campaign_threads`]), but each
/// run is single-threaded and the outcome — including the digest — is
/// bit-identical at any thread count.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignOutcome {
    campaign_with_threads(cfg, campaign_threads())
}

/// Executes a campaign of lossy-recovery plans: every plan crashes the
/// server and blankets the crash/recovery window with loss bursts (see
/// [`generate_lossy_recovery_plan`]), across the two PMNet placements.
/// The verdict's convergence invariant — device logs drained, recovery
/// barrier closed — is what these plans attack. Fully determined by
/// `(seed, plans_per_design)`.
pub fn run_lossy_recovery_campaign(seed: u64, plans_per_design: usize) -> CampaignOutcome {
    lossy_campaign_with_threads(seed, plans_per_design, 1, campaign_threads())
}

/// [`run_lossy_recovery_campaign`] with every run batched at
/// `batch_window` (devices and server apply). The plan/seed derivation is
/// identical, so `batch_window: 1` reproduces the unbatched campaign
/// digest exactly — the frozen goldens pin that equivalence.
pub fn run_lossy_recovery_campaign_with_window(
    seed: u64,
    plans_per_design: usize,
    batch_window: u32,
) -> CampaignOutcome {
    lossy_campaign_with_threads(seed, plans_per_design, batch_window, campaign_threads())
}

fn lossy_campaign_with_threads(
    seed: u64,
    plans_per_design: usize,
    batch_window: u32,
    threads: usize,
) -> CampaignOutcome {
    lossy_apply_campaign_with_threads(seed, plans_per_design, batch_window, 1, threads)
}

/// Executes a campaign of lossy-recovery plans with every run applying on
/// `apply_threads` server workers (see `ApplyConfig` in `pmnet-core`).
/// Every plan crashes the server mid-traffic, so with `apply_threads > 1`
/// the kill lands while the worker pool holds staged updates — the
/// concurrent-apply crash story. Runs with more than one apply thread are
/// checked in the model's concurrent-history mode. Plan/seed derivation
/// matches [`run_lossy_recovery_campaign`] exactly, so `apply_threads: 1`
/// reproduces the frozen lossy-recovery digest bit for bit.
pub fn run_concurrent_apply_campaign(
    seed: u64,
    plans_per_design: usize,
    apply_threads: u32,
) -> CampaignOutcome {
    lossy_apply_campaign_with_threads(seed, plans_per_design, 1, apply_threads, campaign_threads())
}

fn lossy_apply_campaign_with_threads(
    seed: u64,
    plans_per_design: usize,
    batch_window: u32,
    apply_threads: u32,
    threads: usize,
) -> CampaignOutcome {
    let mut meta = SimRng::seed(seed);
    let designs = [DesignPoint::PmnetSwitch, DesignPoint::PmnetNic];
    let mut jobs = Vec::with_capacity(designs.len() * plans_per_design);
    for (di, &design) in designs.iter().enumerate() {
        let mut design_rng = meta.fork(1 + di as u64);
        let base = Scenario::standard(design, 0);
        let topo = Topology::for_design(design, base.clients);
        for index in 0..plans_per_design {
            let mut plan_rng = design_rng.fork(index as u64);
            let run_seed = plan_rng.uniform_u64(0..u64::MAX);
            let plan = generate_lossy_recovery_plan(&mut plan_rng, &topo, Dur::millis(8));
            jobs.push(CampaignJob {
                design,
                index,
                seed: run_seed,
                scenario: Scenario::standard(design, run_seed)
                    .with_batch_window(batch_window)
                    .with_apply_threads(apply_threads),
                plan,
            });
        }
    }
    let verdicts = execute_jobs(&jobs, threads);
    merge_outcome(jobs, verdicts)
}

/// Executes a campaign of chained-replica failover plans on the sharded
/// fabric designs: every plan fail-stops (or replaces) at least one chain
/// member mid-traffic — some under a concurrent server crash, some under
/// spine loss (see [`generate_failover_plan`]). The claim under test is
/// the fabric's headline invariant: no client-acked update is lost when a
/// device dies, and the system stays live through fence → promote →
/// re-home. Fully determined by `(seed, plans_per_design)`.
pub fn run_failover_campaign(seed: u64, plans_per_design: usize) -> CampaignOutcome {
    failover_campaign_with_threads(seed, plans_per_design, 1, campaign_threads())
}

/// [`run_failover_campaign`] with every run batched at `batch_window`:
/// chained-replica failover under doorbell batching, where a staged (not
/// yet persisted) window on the dying primary must be re-driven by client
/// retries rather than falsely acked.
pub fn run_failover_campaign_with_window(
    seed: u64,
    plans_per_design: usize,
    batch_window: u32,
) -> CampaignOutcome {
    failover_campaign_with_threads(seed, plans_per_design, batch_window, campaign_threads())
}

fn failover_campaign_with_threads(
    seed: u64,
    plans_per_design: usize,
    batch_window: u32,
    threads: usize,
) -> CampaignOutcome {
    let mut meta = SimRng::seed(seed);
    let designs = [
        DesignPoint::PmnetSharded { shards: 2 },
        DesignPoint::PmnetSharded { shards: 3 },
    ];
    let mut jobs = Vec::with_capacity(designs.len() * plans_per_design);
    for (di, &design) in designs.iter().enumerate() {
        let mut design_rng = meta.fork(1 + di as u64);
        let base = Scenario::standard(design, 0);
        let topo = Topology::for_design(design, base.clients);
        for index in 0..plans_per_design {
            let mut plan_rng = design_rng.fork(index as u64);
            let run_seed = plan_rng.uniform_u64(0..u64::MAX);
            let plan = generate_failover_plan(&mut plan_rng, &topo, Dur::millis(8));
            jobs.push(CampaignJob {
                design,
                index,
                seed: run_seed,
                scenario: Scenario::standard(design, run_seed).with_batch_window(batch_window),
                plan,
            });
        }
    }
    let verdicts = execute_jobs(&jobs, threads);
    merge_outcome(jobs, verdicts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CampaignConfig {
        CampaignConfig {
            plans_per_design: 4,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn campaigns_are_bit_identical_for_a_seed() {
        let a = run_campaign(&small());
        let b = run_campaign(&small());
        assert_eq!(a.digest, b.digest);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run_campaign(&small());
        let b = run_campaign(&CampaignConfig { seed: 2, ..small() });
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn lossy_recovery_campaign_converges_with_identical_digests() {
        // Every plan crashes the server under loss; the convergence
        // invariant (logs drained, barrier closed) must hold on all of
        // them, and a replay must be bit-identical.
        let a = run_lossy_recovery_campaign(2024, 20);
        assert_eq!(a.runs.len(), 40);
        assert_eq!(
            a.failure_count(),
            0,
            "violations: {:?}",
            a.failures
                .iter()
                .map(|f| f.replay().violations)
                .collect::<Vec<_>>()
        );
        // The campaign must actually exercise recovery under loss, not
        // pass vacuously: redo replays and retransmissions must occur.
        let redo: u64 = a.runs.iter().map(|r| r.verdict.redo_applied).sum();
        let retries: u64 = a.runs.iter().map(|r| r.verdict.client_retries).sum();
        assert!(redo > 0, "no run replayed a redo log");
        assert!(retries > 0, "no run retransmitted under loss");
        let b = run_lossy_recovery_campaign(2024, 20);
        assert_eq!(a.digest, b.digest, "campaign must be bit-identical");
        assert_eq!(a, b);
    }

    #[test]
    fn failover_campaign_never_loses_an_acked_update() {
        // Every plan kills at least one chain member mid-traffic; the
        // verdict's durability audit (no acked update missing, no double
        // apply) and liveness invariant must hold on all of them.
        let a = run_failover_campaign(2025, 15);
        assert_eq!(a.runs.len(), 30);
        assert_eq!(
            a.failure_count(),
            0,
            "violations: {:?}",
            a.failures
                .iter()
                .map(|f| f.replay().violations)
                .collect::<Vec<_>>()
        );
        // Not vacuous: the fabric must actually have driven failovers.
        let failovers: u64 = a.runs.iter().map(|r| r.verdict.failovers).sum();
        assert!(
            failovers >= a.runs.len() as u64,
            "every plan kills a member, so every run must fail over \
             (got {failovers} across {} runs)",
            a.runs.len()
        );
        let b = run_failover_campaign(2025, 15);
        assert_eq!(a.digest, b.digest, "campaign must be bit-identical");
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_execution_is_bit_identical_to_serial() {
        // The whole tool rests on replayability: striping runs across
        // worker threads must not perturb the outcome. Compare the full
        // outcome (not just the digest) at several thread counts,
        // including more threads than jobs.
        let serial = campaign_with_threads(&small(), 1);
        for threads in [2, 3, 64] {
            let parallel = campaign_with_threads(&small(), threads);
            assert_eq!(serial.digest, parallel.digest, "threads={threads}");
            assert_eq!(serial, parallel, "threads={threads}");
        }
        let serial = lossy_campaign_with_threads(2024, 6, 1, 1);
        let parallel = lossy_campaign_with_threads(2024, 6, 1, 4);
        assert_eq!(serial, parallel);
        let serial = failover_campaign_with_threads(2025, 4, 1, 1);
        let parallel = failover_campaign_with_threads(2025, 4, 1, 4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn window_one_campaigns_match_the_unbatched_entry_points() {
        // The `_with_window` variants derive plans and seeds identically,
        // so window 1 must reproduce the frozen campaign digests exactly.
        let a = run_lossy_recovery_campaign(2024, 4);
        let b = run_lossy_recovery_campaign_with_window(2024, 4, 1);
        assert_eq!(a, b);
        let a = run_failover_campaign(2025, 3);
        let b = run_failover_campaign_with_window(2025, 3, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn one_thread_concurrent_apply_campaign_matches_the_lossy_entry_point() {
        // `apply_threads: 1` is the sequential path; the campaign must be
        // indistinguishable from the frozen lossy-recovery entry point.
        let a = run_lossy_recovery_campaign(2024, 4);
        let b = run_concurrent_apply_campaign(2024, 4, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn concurrent_apply_campaign_survives_kills_inside_apply() {
        // Every plan crashes the server under loss while four apply
        // workers hold staged updates; durability, convergence, and the
        // concurrent-history model check must all hold, and the campaign
        // must replay bit-identically (the pool's scheduler is seeded).
        let out = run_concurrent_apply_campaign(2026, 8, 4);
        assert_eq!(
            out.failure_count(),
            0,
            "violations: {:?}",
            out.failures
                .iter()
                .map(|f| f.replay().violations)
                .collect::<Vec<_>>()
        );
        let redo: u64 = out.runs.iter().map(|r| r.verdict.redo_applied).sum();
        assert!(redo > 0, "no run replayed a redo log");
        let b = run_concurrent_apply_campaign(2026, 8, 4);
        assert_eq!(out.digest, b.digest, "concurrent campaign must replay");
        assert_eq!(out, b);
    }

    #[test]
    fn batched_lossy_recovery_campaign_converges() {
        // Crash-under-loss with doorbell batching live on every hop: a
        // staged window dies with the device's volatile state, so the
        // convergence and durability invariants exercise the batch path's
        // crash story, not just its fast path.
        let out = run_lossy_recovery_campaign_with_window(2024, 8, 16);
        assert_eq!(
            out.failure_count(),
            0,
            "violations: {:?}",
            out.failures
                .iter()
                .map(|f| f.replay().violations)
                .collect::<Vec<_>>()
        );
        let redo: u64 = out.runs.iter().map(|r| r.verdict.redo_applied).sum();
        assert!(redo > 0, "no run replayed a redo log");
        // Replay artifacts carry the window, so a failure would reproduce.
        let b = run_lossy_recovery_campaign_with_window(2024, 8, 16);
        assert_eq!(out.digest, b.digest, "batched campaign must replay");
    }

    #[test]
    fn batched_failover_campaign_never_loses_an_acked_update() {
        let out = run_failover_campaign_with_window(2025, 6, 16);
        assert_eq!(
            out.failure_count(),
            0,
            "violations: {:?}",
            out.failures
                .iter()
                .map(|f| f.replay().violations)
                .collect::<Vec<_>>()
        );
        let failovers: u64 = out.runs.iter().map(|r| r.verdict.failovers).sum();
        assert!(failovers >= out.runs.len() as u64, "vacuous campaign");
    }

    #[test]
    fn healthy_system_survives_a_small_campaign() {
        let out = run_campaign(&small());
        assert_eq!(out.runs.len(), 12);
        assert_eq!(
            out.failure_count(),
            0,
            "violations: {:?}",
            out.failures
                .iter()
                .map(|a| a.replay().violations)
                .collect::<Vec<_>>()
        );
    }
}
