//! Delta-debugging (ddmin) reduction of failing fault plans.
//!
//! When a campaign finds a plan that violates an invariant, the raw plan
//! usually mixes the one or two events that matter with harmless noise.
//! [`ddmin`] deletes events while the failure reproduces, converging on a
//! 1-minimal plan: removing any single remaining event makes the failure
//! disappear. Because runs are deterministic (see [`crate::runner::run`]),
//! the oracle never flakes and the reduction is itself reproducible.

use crate::plan::FaultPlan;
use crate::runner::{run, Scenario, Verdict};

/// Statistics of one shrink, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Oracle executions spent.
    pub tests: usize,
    /// Events in the original plan.
    pub from_events: usize,
    /// Events in the minimized plan.
    pub to_events: usize,
}

/// Reduces `plan` to a 1-minimal failing plan using the classic ddmin
/// algorithm. `still_fails` is the oracle: it must return `true` for the
/// input plan (asserted) and for any plan that reproduces the failure.
pub fn ddmin<F: FnMut(&FaultPlan) -> bool>(
    plan: &FaultPlan,
    mut still_fails: F,
) -> (FaultPlan, ShrinkStats) {
    let mut tests = 0;
    let mut oracle = |p: &FaultPlan| {
        tests += 1;
        still_fails(p)
    };
    assert!(
        oracle(plan),
        "ddmin needs a failing input plan (the oracle returned false)"
    );
    let mut cur = plan.clone();
    let mut n = 2usize;
    while cur.len() >= 2 {
        let len = cur.len();
        n = n.min(len);
        let chunk = len.div_ceil(n);

        // A failing smaller plan keeping chunk `i` (subset step) or
        // dropping it (complement step), if one exists.
        let mut first_failing = |complement: bool| {
            (0..n).find_map(|i| {
                let lo = i * chunk;
                let hi = (lo + chunk).min(len);
                if lo >= hi {
                    return None;
                }
                let mut keep = vec![complement; len];
                keep[lo..hi].fill(!complement);
                let candidate = cur.subset(&keep);
                (candidate.len() < len && oracle(&candidate)).then_some(candidate)
            })
        };

        // Try each chunk alone: does a small subset already fail?
        if let Some(candidate) = first_failing(false) {
            cur = candidate;
            n = 2;
            continue;
        }

        // Try each complement: can one chunk be deleted?
        if let Some(candidate) = first_failing(true) {
            cur = candidate;
            n = (n - 1).max(2);
            continue;
        }

        if n >= len {
            break; // 1-minimal: no single chunk (of any granularity) is removable.
        }
        n = (n * 2).min(len);
    }
    let stats = ShrinkStats {
        tests,
        from_events: plan.len(),
        to_events: cur.len(),
    };
    (cur, stats)
}

/// Shrinks a plan that fails under `scenario`, using "the verdict does not
/// pass" as the oracle. Returns the minimal plan, its (failing) verdict,
/// and shrink statistics.
pub fn shrink_failure(scenario: &Scenario, plan: &FaultPlan) -> (FaultPlan, Verdict, ShrinkStats) {
    let (minimal, stats) = ddmin(plan, |p| !run(scenario, p).passed);
    let verdict = run(scenario, &minimal);
    debug_assert!(!verdict.passed, "minimized plan must still fail");
    (minimal, verdict, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Fault, LinkTarget};
    use pmnet_sim::Dur;

    /// A synthetic oracle: the plan "fails" iff it contains both marker
    /// events (a flap on backbone 0 and a server crash), regardless of
    /// the noise around them.
    fn needs_pair(p: &FaultPlan) -> bool {
        let has_flap = p.events.iter().any(|e| {
            matches!(
                e.fault,
                Fault::LinkFlap {
                    link: LinkTarget::Backbone(0),
                    ..
                }
            )
        });
        let has_crash = p
            .events
            .iter()
            .any(|e| matches!(e.fault, Fault::ServerCrash { .. }));
        has_flap && has_crash
    }

    fn noisy_plan() -> FaultPlan {
        let mut p = FaultPlan::new();
        for i in 0..6 {
            p.push(
                Dur::micros(10 + i * 10),
                Fault::DropBurst {
                    link: LinkTarget::Access(i as usize % 3),
                    permille: 100,
                    dur: Dur::micros(50),
                },
            );
        }
        p.push(
            Dur::micros(35),
            Fault::LinkFlap {
                link: LinkTarget::Backbone(0),
                down_for: Dur::micros(40),
            },
        );
        p.push(
            Dur::micros(75),
            Fault::ServerCrash {
                downtime: Some(Dur::millis(1)),
            },
        );
        p
    }

    #[test]
    fn ddmin_finds_the_minimal_pair() {
        let plan = noisy_plan();
        let (minimal, stats) = ddmin(&plan, needs_pair);
        assert_eq!(minimal.len(), 2, "exactly the two markers: {minimal}");
        assert!(needs_pair(&minimal));
        assert_eq!(stats.from_events, 8);
        assert_eq!(stats.to_events, 2);
        assert!(stats.tests > 1);
    }

    #[test]
    fn ddmin_on_single_event_plan_returns_it() {
        let mut p = FaultPlan::new();
        p.push(
            Dur::micros(1),
            Fault::ServerCrash {
                downtime: Some(Dur::millis(1)),
            },
        );
        let (minimal, _) = ddmin(&p, |plan| {
            plan.events
                .iter()
                .any(|e| matches!(e.fault, Fault::ServerCrash { .. }))
        });
        assert_eq!(minimal, p);
    }

    #[test]
    #[should_panic(expected = "failing input plan")]
    fn ddmin_rejects_a_passing_input() {
        let p = noisy_plan();
        let _ = ddmin(&p, |_| false);
    }

    #[test]
    fn ddmin_result_is_one_minimal() {
        let plan = noisy_plan();
        let (minimal, _) = ddmin(&plan, needs_pair);
        for i in 0..minimal.len() {
            let mut keep = vec![true; minimal.len()];
            keep[i] = false;
            assert!(
                !needs_pair(&minimal.subset(&keep)),
                "event {i} is removable — not 1-minimal"
            );
        }
    }
}
