//! The fault-plan DSL: a serializable schedule of timed fault events.
//!
//! A [`FaultPlan`] is the unit the whole harness operates on — the
//! generator emits plans, the runner executes them against a built system,
//! the shrinker deletes events from them, and the replay artifact stores
//! them as text. Keeping the plan a plain value (no closures, no node ids)
//! is what makes a failure replayable from nothing but a seed and a file.
//!
//! Plans are serialized to a line-oriented `key=value` text format (the
//! build environment has no serde); durations are nanoseconds and
//! probabilities are per-mille integers so round-trips are exact.

use std::fmt;
use std::str::FromStr;

use pmnet_sim::Dur;

/// A link on the standard topologies, named positionally so a plan stays
/// meaningful across designs and across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkTarget {
    /// The access link of client `i` (client `i` to the merge switch).
    Access(usize),
    /// Backbone hop `i`: the link between `path[i]` and `path[i + 1]` of
    /// the built system's merge-to-server path.
    Backbone(usize),
}

impl fmt::Display for LinkTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkTarget::Access(i) => write!(f, "access:{i}"),
            LinkTarget::Backbone(i) => write!(f, "backbone:{i}"),
        }
    }
}

impl FromStr for LinkTarget {
    type Err = String;

    fn from_str(s: &str) -> Result<LinkTarget, String> {
        let (kind, idx) = s
            .split_once(':')
            .ok_or_else(|| format!("link target `{s}`: expected kind:index"))?;
        let i: usize = idx
            .parse()
            .map_err(|_| format!("link target `{s}`: bad index"))?;
        match kind {
            "access" => Ok(LinkTarget::Access(i)),
            "backbone" => Ok(LinkTarget::Backbone(i)),
            _ => Err(format!("link target `{s}`: unknown kind `{kind}`")),
        }
    }
}

/// One injectable fault. Durations are relative to the event's start time;
/// probabilities are per-mille (`0..=1000`) so plans serialize exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Power-fail the server; `downtime: None` means it never restarts.
    ServerCrash {
        /// Time until restart, if any.
        downtime: Option<Dur>,
    },
    /// Power-fail PMNet device `device` (index into the built system's
    /// device list).
    DeviceCrash {
        /// Device index.
        device: usize,
        /// Time until restart, if any.
        downtime: Option<Dur>,
    },
    /// Fail-stop PMNet device `device` permanently. Unlike a permanent
    /// [`Fault::DeviceCrash`], this counts as transient: it is aimed at
    /// sharded-fabric designs whose chained backup takes over (fence,
    /// promote, re-home), so the system heals even though the device
    /// never returns. On a design without a backup chain member the
    /// liveness invariant will (correctly) flag the resulting wedge.
    DeviceFail {
        /// Device index.
        device: usize,
    },
    /// Fail-stop PMNet device `device`, then power a replacement back up
    /// at the same address after `downtime`. On a sharded fabric the
    /// failover has already re-homed the shard by then, so the returning
    /// device is a zombie: its first heartbeat must be answered with a
    /// re-fence, never a re-admission.
    DeviceReplace {
        /// Device index.
        device: usize,
        /// Time until the replacement powers up.
        downtime: Dur,
    },
    /// Crash client `client`; on restart it opens a fresh session and
    /// reissues its remaining requests.
    ClientCrash {
        /// Client index.
        client: usize,
        /// Time until restart, if any.
        downtime: Option<Dur>,
    },
    /// Administratively down a link, restoring it after `down_for`.
    LinkFlap {
        /// The link to flap.
        link: LinkTarget,
        /// How long it stays down.
        down_for: Dur,
    },
    /// Random packet loss on a link for a bounded window.
    DropBurst {
        /// The impaired link.
        link: LinkTarget,
        /// Drop probability in per-mille.
        permille: u32,
        /// Burst duration.
        dur: Dur,
    },
    /// Random packet duplication on a link for a bounded window.
    DuplicateBurst {
        /// The impaired link.
        link: LinkTarget,
        /// Duplication probability in per-mille.
        permille: u32,
        /// Burst duration.
        dur: Dur,
    },
    /// Random extra delay (reordering) on a link for a bounded window.
    ReorderBurst {
        /// The impaired link.
        link: LinkTarget,
        /// Reorder probability in per-mille.
        permille: u32,
        /// Maximum extra delay of a reordered packet.
        extra: Dur,
        /// Burst duration.
        dur: Dur,
    },
    /// Random single-bit payload corruption on a link for a bounded window.
    CorruptBurst {
        /// The impaired link.
        link: LinkTarget,
        /// Corruption probability in per-mille.
        permille: u32,
        /// Burst duration.
        dur: Dur,
    },
    /// Degrade a PMNet device's PM module (latency and bandwidth scale by
    /// `factor`) for a bounded window — a thermally throttled or failing
    /// DIMM.
    PmSpike {
        /// Device index.
        device: usize,
        /// Slowdown multiplier (`>= 2` to be observable).
        factor: u32,
        /// Spike duration.
        dur: Dur,
    },
}

impl Fault {
    /// Whether the fault heals on its own: bounded bursts, flaps that come
    /// back up, crashes with a restart scheduled. A plan of transient
    /// faults must leave the system able to finish every client's
    /// workload — that is the liveness invariant the runner checks.
    pub fn is_transient(&self) -> bool {
        match self {
            Fault::ServerCrash { downtime }
            | Fault::DeviceCrash { downtime, .. }
            | Fault::ClientCrash { downtime, .. } => downtime.is_some(),
            // Healed by chained-replica failover, not by the device coming
            // back: the fabric fences the corpse and promotes its backup.
            Fault::DeviceFail { .. } | Fault::DeviceReplace { .. } => true,
            Fault::LinkFlap { .. }
            | Fault::DropBurst { .. }
            | Fault::DuplicateBurst { .. }
            | Fault::ReorderBurst { .. }
            | Fault::CorruptBurst { .. }
            | Fault::PmSpike { .. } => true,
        }
    }
}

/// A fault scheduled at an absolute simulation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Injection time, relative to the start of the run.
    pub at: Dur,
    /// What happens.
    pub fault: Fault,
}

/// An ordered schedule of fault events — the value the generator, runner,
/// shrinker and artifact all exchange.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The events, kept sorted by injection time.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (a fault-free control run).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Appends an event, keeping the schedule sorted by time (stable, so
    /// same-instant events keep insertion order).
    pub fn push(&mut self, at: Dur, fault: Fault) {
        let pos = self.events.partition_point(|e| e.at <= at);
        self.events.insert(pos, FaultEvent { at, fault });
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Whether every fault heals on its own (see [`Fault::is_transient`]).
    pub fn is_transient(&self) -> bool {
        self.events.iter().all(|e| e.fault.is_transient())
    }

    /// The plan restricted to the events selected by `keep` (same length
    /// as `events`); used by the shrinker.
    pub fn subset(&self, keep: &[bool]) -> FaultPlan {
        assert_eq!(keep.len(), self.events.len(), "mask length mismatch");
        FaultPlan {
            events: self
                .events
                .iter()
                .zip(keep)
                .filter(|(_, &k)| k)
                .map(|(e, _)| *e)
                .collect(),
        }
    }
}

fn dur_ns(d: Dur) -> u64 {
    d.as_nanos()
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at={}", dur_ns(self.at))?;
        match self.fault {
            Fault::ServerCrash { downtime } => {
                write!(f, " server-crash")?;
                if let Some(d) = downtime {
                    write!(f, " down={}", dur_ns(d))?;
                }
            }
            Fault::DeviceCrash { device, downtime } => {
                write!(f, " device-crash dev={device}")?;
                if let Some(d) = downtime {
                    write!(f, " down={}", dur_ns(d))?;
                }
            }
            Fault::DeviceFail { device } => {
                write!(f, " device-fail dev={device}")?;
            }
            Fault::DeviceReplace { device, downtime } => {
                write!(f, " device-replace dev={device} down={}", dur_ns(downtime))?;
            }
            Fault::ClientCrash { client, downtime } => {
                write!(f, " client-crash client={client}")?;
                if let Some(d) = downtime {
                    write!(f, " down={}", dur_ns(d))?;
                }
            }
            Fault::LinkFlap { link, down_for } => {
                write!(f, " link-flap link={link} down={}", dur_ns(down_for))?;
            }
            Fault::DropBurst {
                link,
                permille,
                dur,
            } => {
                write!(
                    f,
                    " drop-burst link={link} permille={permille} dur={}",
                    dur_ns(dur)
                )?;
            }
            Fault::DuplicateBurst {
                link,
                permille,
                dur,
            } => {
                write!(
                    f,
                    " dup-burst link={link} permille={permille} dur={}",
                    dur_ns(dur)
                )?;
            }
            Fault::ReorderBurst {
                link,
                permille,
                extra,
                dur,
            } => {
                write!(
                    f,
                    " reorder-burst link={link} permille={permille} extra={} dur={}",
                    dur_ns(extra),
                    dur_ns(dur)
                )?;
            }
            Fault::CorruptBurst {
                link,
                permille,
                dur,
            } => {
                write!(
                    f,
                    " corrupt-burst link={link} permille={permille} dur={}",
                    dur_ns(dur)
                )?;
            }
            Fault::PmSpike {
                device,
                factor,
                dur,
            } => {
                write!(
                    f,
                    " pm-spike dev={device} factor={factor} dur={}",
                    dur_ns(dur)
                )?;
            }
        }
        Ok(())
    }
}

/// Parses the `key=value` tail of an event line into lookup pairs.
fn kv_pairs(tokens: &[&str]) -> Result<Vec<(String, String)>, String> {
    tokens
        .iter()
        .map(|t| {
            t.split_once('=')
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .ok_or_else(|| format!("expected key=value, got `{t}`"))
        })
        .collect()
}

struct Fields(Vec<(String, String)>);

impl Fields {
    fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn req(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing `{key}=`"))
    }

    fn dur(&self, key: &str) -> Result<Dur, String> {
        let ns: u64 = self
            .req(key)?
            .parse()
            .map_err(|_| format!("bad `{key}=` (want nanoseconds)"))?;
        Ok(Dur::nanos(ns))
    }

    fn dur_opt(&self, key: &str) -> Result<Option<Dur>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => {
                let ns: u64 = v
                    .parse()
                    .map_err(|_| format!("bad `{key}=` (want nanoseconds)"))?;
                Ok(Some(Dur::nanos(ns)))
            }
        }
    }

    fn usize(&self, key: &str) -> Result<usize, String> {
        self.req(key)?
            .parse()
            .map_err(|_| format!("bad `{key}=` (want an index)"))
    }

    fn u32(&self, key: &str) -> Result<u32, String> {
        self.req(key)?
            .parse()
            .map_err(|_| format!("bad `{key}=` (want an integer)"))
    }

    fn link(&self, key: &str) -> Result<LinkTarget, String> {
        self.req(key)?.parse()
    }

    fn permille(&self) -> Result<u32, String> {
        let p = self.u32("permille")?;
        if p > 1000 {
            return Err(format!("permille={p} out of range (0..=1000)"));
        }
        Ok(p)
    }
}

impl FromStr for FaultEvent {
    type Err = String;

    fn from_str(line: &str) -> Result<FaultEvent, String> {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.len() < 2 {
            return Err(format!("event line `{line}`: too short"));
        }
        let at = {
            let (k, v) = tokens[0]
                .split_once('=')
                .ok_or_else(|| format!("event line `{line}`: expected at=<ns> first"))?;
            if k != "at" {
                return Err(format!("event line `{line}`: expected at=<ns> first"));
            }
            let ns: u64 = v
                .parse()
                .map_err(|_| format!("event line `{line}`: bad at="))?;
            Dur::nanos(ns)
        };
        let kind = tokens[1];
        let f = Fields(kv_pairs(&tokens[2..]).map_err(|e| format!("event line `{line}`: {e}"))?);
        let fault = (|| -> Result<Fault, String> {
            match kind {
                "server-crash" => Ok(Fault::ServerCrash {
                    downtime: f.dur_opt("down")?,
                }),
                "device-crash" => Ok(Fault::DeviceCrash {
                    device: f.usize("dev")?,
                    downtime: f.dur_opt("down")?,
                }),
                "device-fail" => Ok(Fault::DeviceFail {
                    device: f.usize("dev")?,
                }),
                "device-replace" => Ok(Fault::DeviceReplace {
                    device: f.usize("dev")?,
                    downtime: f.dur("down")?,
                }),
                "client-crash" => Ok(Fault::ClientCrash {
                    client: f.usize("client")?,
                    downtime: f.dur_opt("down")?,
                }),
                "link-flap" => Ok(Fault::LinkFlap {
                    link: f.link("link")?,
                    down_for: f.dur("down")?,
                }),
                "drop-burst" => Ok(Fault::DropBurst {
                    link: f.link("link")?,
                    permille: f.permille()?,
                    dur: f.dur("dur")?,
                }),
                "dup-burst" => Ok(Fault::DuplicateBurst {
                    link: f.link("link")?,
                    permille: f.permille()?,
                    dur: f.dur("dur")?,
                }),
                "reorder-burst" => Ok(Fault::ReorderBurst {
                    link: f.link("link")?,
                    permille: f.permille()?,
                    extra: f.dur("extra")?,
                    dur: f.dur("dur")?,
                }),
                "corrupt-burst" => Ok(Fault::CorruptBurst {
                    link: f.link("link")?,
                    permille: f.permille()?,
                    dur: f.dur("dur")?,
                }),
                "pm-spike" => Ok(Fault::PmSpike {
                    device: f.usize("dev")?,
                    factor: f.u32("factor")?,
                    dur: f.dur("dur")?,
                }),
                _ => Err(format!("unknown fault kind `{kind}`")),
            }
        })()
        .map_err(|e| format!("event line `{line}`: {e}"))?;
        Ok(FaultEvent { at, fault })
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

impl FromStr for FaultPlan {
    type Err = String;

    fn from_str(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let e: FaultEvent = line.parse()?;
            plan.push(e.at, e.fault);
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FaultPlan {
        let mut p = FaultPlan::new();
        p.push(
            Dur::micros(300),
            Fault::DropBurst {
                link: LinkTarget::Backbone(1),
                permille: 250,
                dur: Dur::micros(120),
            },
        );
        p.push(
            Dur::micros(100),
            Fault::ServerCrash {
                downtime: Some(Dur::millis(2)),
            },
        );
        p.push(
            Dur::micros(100),
            Fault::ClientCrash {
                client: 2,
                downtime: None,
            },
        );
        p.push(
            Dur::micros(450),
            Fault::ReorderBurst {
                link: LinkTarget::Access(0),
                permille: 400,
                extra: Dur::micros(80),
                dur: Dur::micros(200),
            },
        );
        p.push(
            Dur::micros(500),
            Fault::PmSpike {
                device: 0,
                factor: 25,
                dur: Dur::micros(700),
            },
        );
        p.push(
            Dur::micros(20),
            Fault::LinkFlap {
                link: LinkTarget::Backbone(0),
                down_for: Dur::micros(90),
            },
        );
        p.push(
            Dur::micros(40),
            Fault::DuplicateBurst {
                link: LinkTarget::Access(1),
                permille: 500,
                dur: Dur::micros(60),
            },
        );
        p.push(
            Dur::micros(60),
            Fault::CorruptBurst {
                link: LinkTarget::Backbone(1),
                permille: 90,
                dur: Dur::micros(70),
            },
        );
        p.push(
            Dur::micros(80),
            Fault::DeviceCrash {
                device: 0,
                downtime: Some(Dur::micros(600)),
            },
        );
        p.push(Dur::micros(70), Fault::DeviceFail { device: 1 });
        p.push(
            Dur::micros(90),
            Fault::DeviceReplace {
                device: 0,
                downtime: Dur::micros(800),
            },
        );
        p
    }

    #[test]
    fn push_keeps_events_sorted_and_stable() {
        let p = sample();
        let times: Vec<u64> = p.events.iter().map(|e| e.at.as_nanos()).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
        // The two t=100us events keep insertion order: crash first.
        let at100: Vec<&FaultEvent> = p
            .events
            .iter()
            .filter(|e| e.at == Dur::micros(100))
            .collect();
        assert!(matches!(at100[0].fault, Fault::ServerCrash { .. }));
        assert!(matches!(at100[1].fault, Fault::ClientCrash { .. }));
    }

    #[test]
    fn text_round_trip_is_exact() {
        let p = sample();
        let text = p.to_string();
        let back: FaultPlan = text.parse().expect("parse back");
        assert_eq!(p, back);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# a comment\n\nat=1000 server-crash down=5000\n";
        let p: FaultPlan = text.parse().unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(
            p.events[0].fault,
            Fault::ServerCrash {
                downtime: Some(Dur::nanos(5000))
            }
        );
    }

    #[test]
    fn transient_classification() {
        // Dropping the permanent client crash (sorted index 7: second of
        // the two t=100us events) leaves only self-healing faults — the
        // permanent device-fail counts as transient because chained
        // failover heals it.
        let p = sample();
        let mut keep = vec![true; p.len()];
        let idx = p
            .events
            .iter()
            .position(|e| matches!(e.fault, Fault::ClientCrash { .. }))
            .unwrap();
        keep[idx] = false;
        assert!(p.subset(&keep).is_transient());
        assert!(!p.is_transient());
        assert!(Fault::DeviceFail { device: 0 }.is_transient());
        assert!(Fault::DeviceReplace {
            device: 0,
            downtime: Dur::micros(1)
        }
        .is_transient());
    }

    #[test]
    fn parse_errors_are_descriptive() {
        let e = "at=12 warp-core-breach".parse::<FaultEvent>().unwrap_err();
        assert!(e.contains("unknown fault kind"), "{e}");
        let e = "drop-burst link=access:0"
            .parse::<FaultEvent>()
            .unwrap_err();
        assert!(e.contains("at=<ns>"), "{e}");
        let e = "at=1 drop-burst link=access:0 permille=2000 dur=5"
            .parse::<FaultEvent>()
            .unwrap_err();
        assert!(e.contains("out of range"), "{e}");
        let e = "at=1 link-flap link=ring:3 down=5"
            .parse::<FaultEvent>()
            .unwrap_err();
        assert!(e.contains("unknown kind"), "{e}");
    }

    #[test]
    fn subset_selects_by_mask() {
        let p = sample();
        let mut keep = vec![false; p.len()];
        keep[0] = true;
        keep[4] = true;
        let s = p.subset(&keep);
        assert_eq!(s.len(), 2);
        assert_eq!(s.events[0], p.events[0]);
        assert_eq!(s.events[1], p.events[4]);
    }
}
