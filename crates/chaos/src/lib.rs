//! # pmnet-chaos — deterministic fault-schedule exploration
//!
//! A chaos-testing harness for the PMNet reproduction. The paper's central
//! claim is *durability*: an update acknowledged by a PMNet device
//! survives packet loss, reordering, duplication, corruption and power
//! failure. This crate turns that claim into a checkable search problem:
//!
//! 1. **Plans** ([`plan`]) — a serializable DSL of timed fault events:
//!    crashes with optional restart, permanent device fail-stops healed
//!    by chained-replica failover, link flaps, loss / duplication /
//!    reordering / corruption bursts, PM latency spikes.
//! 2. **Generation** ([`generate`]) — seeded random plans at a chosen
//!    intensity, aimed using a positional view of the topology.
//! 3. **Execution** ([`runner`]) — a plan runs against a freshly built
//!    system; the verdict checks the durability audit (apply order,
//!    exactly-once, no acknowledged update lost) and liveness (transient
//!    faults must not wedge the protocol).
//! 4. **Campaigns** ([`campaign`]) — hundreds of plans across design
//!    points, folded into an FNV digest so determinism is a one-word
//!    comparison.
//! 5. **Shrinking** ([`shrink`]) — ddmin reduces a failing plan to a
//!    1-minimal fault set, and [`artifact`] serializes it (seed + design
//!    + plan) for replay from a text file.
//!
//! Every run is a pure function of `(Scenario, FaultPlan)`: same inputs,
//! bit-identical verdict. That makes failures replayable, shrinkable and
//! diffable across code changes.
//!
//! ## Example
//!
//! ```
//! use pmnet_chaos::{run, Fault, FaultPlan, Scenario};
//! use pmnet_chaos::plan::LinkTarget;
//! use pmnet_core::system::DesignPoint;
//! use pmnet_sim::Dur;
//!
//! // Drop 30% of backbone packets for 300us, then crash the server.
//! let mut plan = FaultPlan::new();
//! plan.push(Dur::micros(200), Fault::DropBurst {
//!     link: LinkTarget::Backbone(1),
//!     permille: 300,
//!     dur: Dur::micros(300),
//! });
//! plan.push(Dur::millis(1), Fault::ServerCrash {
//!     downtime: Some(Dur::millis(1)),
//! });
//!
//! let verdict = run(&Scenario::standard(DesignPoint::PmnetSwitch, 7), &plan);
//! assert!(verdict.passed, "{:?}", verdict.violations);
//! ```

#![warn(missing_docs)]

pub mod artifact;
pub mod campaign;
pub mod generate;
pub mod plan;
pub mod runner;
pub mod shrink;

pub use artifact::Artifact;
pub use campaign::{
    run_campaign, run_concurrent_apply_campaign, run_failover_campaign,
    run_failover_campaign_with_window, run_lossy_recovery_campaign,
    run_lossy_recovery_campaign_with_window, CampaignConfig, CampaignOutcome,
};
pub use generate::{
    generate_failover_plan, generate_lossy_recovery_plan, generate_plan, Intensity, Topology,
};
pub use plan::{Fault, FaultEvent, FaultPlan, LinkTarget};
pub use runner::{run, Scenario, Verdict};
pub use shrink::{ddmin, shrink_failure, ShrinkStats};
