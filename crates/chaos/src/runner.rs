//! Executes a fault plan against a freshly built system and checks the
//! durability and liveness invariants.
//!
//! The runner is the bridge between the positional, value-typed
//! [`FaultPlan`](crate::FaultPlan) world and the node-id world of a
//! [`BuiltSystem`]: it builds the system for a [`Scenario`], translates
//! every fault event into concrete `World` operations (crash schedules,
//! link flaps, spec rewrites, PM slowdowns), interleaves them with the
//! client workload, and renders a [`Verdict`]. Everything is derived from
//! the scenario seed, so the same `(Scenario, FaultPlan)` pair always
//! produces the same verdict — the property the shrinker and the
//! campaign's determinism digest rely on.

use pmnet_core::audit;
use pmnet_core::client::ClientLib;
use pmnet_core::config::RetryConfig;
use pmnet_core::device::PmnetDevice;
use pmnet_core::server::ServerLib;
use pmnet_core::system::{BuiltSystem, DesignPoint, MicroSource, SystemBuilder};
use pmnet_core::SystemConfig;
use pmnet_sim::{Dur, NodeId, Time};
use pmnet_telemetry::flight::FlightDump;
use pmnet_telemetry::Telemetry;
use pmnet_workloads::KvHandler;

use crate::plan::{Fault, FaultPlan, LinkTarget};

/// The workload and system a plan is executed against. Everything needed
/// to rebuild the run bit-identically lives here (plus the plan itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scenario {
    /// The system design under test.
    pub design: DesignPoint,
    /// Seed for the world and the workload.
    pub seed: u64,
    /// Number of clients.
    pub clients: usize,
    /// Update requests each client issues.
    pub requests_per_client: usize,
    /// Update payload size in bytes.
    pub payload_bytes: usize,
    /// Plant the deliberate dedup bug (`ServerLib::with_dedup_disabled`)
    /// on the primary — used to prove the harness catches real
    /// protocol-level defects.
    pub plant_dedup_bug: bool,
    /// Doorbell batching window on every device and the server's apply
    /// path; 1 (the default) is the unbatched fast path, so all frozen
    /// campaign digests keep their meaning.
    pub batch_window: u32,
    /// Server apply worker threads; 1 (the default) is the sequential
    /// apply path, so all frozen campaign digests keep their meaning.
    /// With more than one thread the model check switches into
    /// concurrent-history mode (`pmnet_model::config_for_apply`).
    pub apply_threads: u32,
    /// Wall-clock (simulated) budget for the run.
    pub deadline: Dur,
    /// Extra settling time after the clients finish (or the deadline
    /// passes) before invariants are checked.
    pub drain: Dur,
}

impl Scenario {
    /// The standard chaos workload: small, but with enough concurrency
    /// and requests that loss, reordering and crashes all have protocol
    /// state to interfere with.
    pub fn standard(design: DesignPoint, seed: u64) -> Scenario {
        Scenario {
            design,
            seed,
            clients: 3,
            requests_per_client: 40,
            payload_bytes: 64,
            plant_dedup_bug: false,
            batch_window: 1,
            apply_threads: 1,
            deadline: Dur::millis(200),
            drain: Dur::millis(20),
        }
    }

    /// Returns a copy with the dedup bug planted.
    pub fn with_dedup_bug(mut self) -> Scenario {
        self.plant_dedup_bug = true;
        self
    }

    /// Returns a copy running with the given doorbell batching window.
    pub fn with_batch_window(mut self, window: u32) -> Scenario {
        self.batch_window = window;
        self
    }

    /// Returns a copy running with the given apply worker count. The
    /// pool's logical scheduler is seeded from the scenario seed (or the
    /// `PMNET_APPLY_SCHED_SEED` override), so every interleaving replays.
    pub fn with_apply_threads(mut self, threads: u32) -> Scenario {
        self.apply_threads = threads;
        self
    }

    /// Builds the system this scenario describes (clients wired up, bug
    /// planted if requested) without running anything.
    pub fn build(&self) -> BuiltSystem {
        let config = SystemConfig {
            // Tight enough that a lost packet is retried well within the
            // deadline, loose enough not to fire during normal operation.
            client_timeout: Dur::millis(2),
            // Scaled to the compressed chaos timescale: the RTO can back
            // off hard under a loss burst yet still leave the retry budget
            // room to converge inside the deadline, and the settle window
            // strictly exceeds the backoff cap.
            retry: RetryConfig {
                rto_min: Dur::micros(500),
                rto_max: Dur::millis(8),
                retry_budget: 16,
                settle_window: Dur::millis(20),
            },
            batch: pmnet_core::config::BatchConfig::windowed(self.batch_window.max(1)),
            apply: pmnet_core::config::ApplyConfig::threaded(self.apply_threads.max(1))
                .with_sched_seed(pmnet_core::config::ApplyConfig::sched_seed_from_env(
                    self.seed,
                )),
            ..SystemConfig::default()
        };
        let mut b = SystemBuilder::new(self.design, config);
        for _ in 0..self.clients {
            b = b.client(Box::new(MicroSource::updates(
                self.requests_per_client,
                self.payload_bytes,
            )));
        }
        b = b.handler_factory(|| Box::new(KvHandler::new("btree", 5)));
        if self.plant_dedup_bug {
            b = b.map_server(ServerLib::with_dedup_disabled);
        }
        b.build(self.seed)
    }
}

/// The outcome of one `(Scenario, FaultPlan)` execution. `PartialEq` over
/// verdicts is exact, so campaign determinism can be asserted directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// Whether every invariant held.
    pub passed: bool,
    /// Human-readable invariant violations (empty iff `passed`).
    pub violations: Vec<String>,
    /// Clients that finished their workload.
    pub finished_clients: usize,
    /// Acknowledged updates checked against the audit log.
    pub acked: usize,
    /// Updates the server applied (including redo).
    pub applied: u64,
    /// Redo (recovery replay) applies.
    pub redo_applied: u64,
    /// Duplicates the server's dedup filter absorbed.
    pub duplicates_dropped: u64,
    /// Corrupt packets dropped by verification, summed over the server
    /// and every PMNet device.
    pub corrupt_dropped: u64,
    /// Client retransmission rounds.
    pub client_retries: u64,
    /// Updates abandoned after exhausting the retry budget.
    pub failed_updates: u64,
    /// Device log entries still staged after the drain window.
    pub stranded_log_entries: u64,
    /// Shard failovers the fabric coordinator drove (0 outside sharded
    /// designs). Deliberately excluded from [`digest_line`]
    /// (`Verdict::digest_line`) so frozen campaign digests over the
    /// classic designs stay comparable across revisions.
    pub failovers: u64,
    /// Simulated end time of the run, in nanoseconds.
    pub end_ns: u64,
    /// Flight-recorder timeline, captured only when an invariant fired
    /// (`None` on passing runs). Deterministic like everything else in
    /// the verdict, but deliberately excluded from [`digest_line`]
    /// (`Verdict::digest_line`) so campaign digests are comparable
    /// across telemetry revisions.
    pub flight: Option<FlightDump>,
}

impl Verdict {
    /// A stable one-line rendering used for campaign digests and logs.
    pub fn digest_line(&self) -> String {
        format!(
            "passed={} violations={} finished={} acked={} applied={} redo={} dups={} corrupt={} retries={} failed={} stranded={} end={}",
            self.passed,
            self.violations.len(),
            self.finished_clients,
            self.acked,
            self.applied,
            self.redo_applied,
            self.duplicates_dropped,
            self.corrupt_dropped,
            self.client_retries,
            self.failed_updates,
            self.stranded_log_entries,
            self.end_ns,
        )
    }
}

/// A fault event lowered onto concrete world objects, scheduled at an
/// absolute time. Burst-type faults lower to an apply/revert pair.
#[derive(Debug, Clone, Copy)]
enum Act {
    Link {
        a: NodeId,
        b: NodeId,
        up: bool,
    },
    Drop {
        a: NodeId,
        b: NodeId,
        prob: f64,
    },
    Duplicate {
        a: NodeId,
        b: NodeId,
        prob: f64,
    },
    Reorder {
        a: NodeId,
        b: NodeId,
        prob: f64,
        extra: Dur,
    },
    Corrupt {
        a: NodeId,
        b: NodeId,
        prob: f64,
    },
    Slowdown {
        dev: NodeId,
        factor: u32,
    },
}

fn resolve_link(sys: &BuiltSystem, link: LinkTarget) -> Option<(NodeId, NodeId)> {
    match link {
        LinkTarget::Access(i) => sys.clients.get(i).map(|&c| (c, sys.merge)),
        LinkTarget::Backbone(i) => {
            if i + 1 < sys.path.len() {
                Some((sys.path[i], sys.path[i + 1]))
            } else {
                None
            }
        }
    }
}

/// Lowers the plan onto the built system: crashes are scheduled directly
/// on the world; link and PM impairments become a time-sorted action list
/// the run loop applies as the clock passes them. Events naming a node or
/// link the topology doesn't have are ignored — a plan written for a
/// bigger system degrades to fewer faults, never a panic.
fn lower_plan(sys: &mut BuiltSystem, plan: &FaultPlan) -> Vec<(Time, Act)> {
    let mut acts: Vec<(Time, Act)> = Vec::new();
    for e in &plan.events {
        let at = Time::ZERO + e.at;
        match e.fault {
            Fault::ServerCrash { downtime } => {
                let server = sys.server;
                sys.world.schedule_crash(server, at, downtime);
            }
            Fault::DeviceCrash { device, downtime } => {
                if let Some(&dev) = sys.devices.get(device) {
                    sys.world.schedule_crash(dev, at, downtime);
                }
            }
            Fault::DeviceFail { device } => {
                if let Some(&dev) = sys.devices.get(device) {
                    sys.world.schedule_crash(dev, at, None);
                }
            }
            Fault::DeviceReplace { device, downtime } => {
                if let Some(&dev) = sys.devices.get(device) {
                    sys.world.schedule_crash(dev, at, Some(downtime));
                }
            }
            Fault::ClientCrash { client, downtime } => {
                if let Some(&c) = sys.clients.get(client) {
                    sys.world.schedule_crash(c, at, downtime);
                }
            }
            Fault::LinkFlap { link, down_for } => {
                if let Some((a, b)) = resolve_link(sys, link) {
                    acts.push((at, Act::Link { a, b, up: false }));
                    acts.push((at + down_for, Act::Link { a, b, up: true }));
                }
            }
            Fault::DropBurst {
                link,
                permille,
                dur,
            } => {
                if let Some((a, b)) = resolve_link(sys, link) {
                    let prob = f64::from(permille) / 1000.0;
                    acts.push((at, Act::Drop { a, b, prob }));
                    acts.push((at + dur, Act::Drop { a, b, prob: 0.0 }));
                }
            }
            Fault::DuplicateBurst {
                link,
                permille,
                dur,
            } => {
                if let Some((a, b)) = resolve_link(sys, link) {
                    let prob = f64::from(permille) / 1000.0;
                    acts.push((at, Act::Duplicate { a, b, prob }));
                    acts.push((at + dur, Act::Duplicate { a, b, prob: 0.0 }));
                }
            }
            Fault::ReorderBurst {
                link,
                permille,
                extra,
                dur,
            } => {
                if let Some((a, b)) = resolve_link(sys, link) {
                    let prob = f64::from(permille) / 1000.0;
                    acts.push((at, Act::Reorder { a, b, prob, extra }));
                    acts.push((
                        at + dur,
                        Act::Reorder {
                            a,
                            b,
                            prob: 0.0,
                            extra: Dur::ZERO,
                        },
                    ));
                }
            }
            Fault::CorruptBurst {
                link,
                permille,
                dur,
            } => {
                if let Some((a, b)) = resolve_link(sys, link) {
                    let prob = f64::from(permille) / 1000.0;
                    acts.push((at, Act::Corrupt { a, b, prob }));
                    acts.push((at + dur, Act::Corrupt { a, b, prob: 0.0 }));
                }
            }
            Fault::PmSpike {
                device,
                factor,
                dur,
            } => {
                if let Some(&dev) = sys.devices.get(device) {
                    let factor = factor.max(1);
                    acts.push((at, Act::Slowdown { dev, factor }));
                    acts.push((at + dur, Act::Slowdown { dev, factor: 1 }));
                }
            }
        }
    }
    // Stable by time: simultaneous apply/revert pairs keep plan order.
    acts.sort_by_key(|&(t, _)| t);
    acts
}

fn apply_act(sys: &mut BuiltSystem, act: Act) {
    match act {
        Act::Link { a, b, up } => sys.world.set_link_up(a, b, up),
        Act::Drop { a, b, prob } => sys
            .world
            .update_link_spec(a, b, move |s| s.with_drop_prob(prob)),
        Act::Duplicate { a, b, prob } => sys
            .world
            .update_link_spec(a, b, move |s| s.with_duplicate_prob(prob)),
        Act::Reorder { a, b, prob, extra } => sys
            .world
            .update_link_spec(a, b, move |s| s.with_reordering(prob, extra)),
        Act::Corrupt { a, b, prob } => sys
            .world
            .update_link_spec(a, b, move |s| s.with_corrupt_prob(prob)),
        Act::Slowdown { dev, factor } => sys
            .world
            .node_mut::<PmnetDevice>(dev)
            .set_pm_slowdown(factor),
    }
}

/// Per-node flight-recorder ring capacity used by chaos runs. Big enough
/// to hold the events leading up to an invariant violation, small enough
/// that ten thousand campaign runs don't notice it.
pub const FLIGHT_CAPACITY: usize = 256;

/// Runs `plan` against a fresh system built for `scenario` and checks the
/// invariants:
///
/// 1. **Durability** — `audit::verify`: per-session apply order, no
///    duplicate application, and no acknowledged update missing from the
///    application log (across crashes).
/// 2. **Liveness** — if the plan is transient (every fault heals), every
///    client must finish its workload before the deadline; a wedged
///    protocol shows up here instead of hanging the harness.
/// 3. **Convergence** — under a transient plan, once the drain window
///    passes every device log has emptied (each staged entry was either
///    invalidated by a fast-path server-ACK or confirmed by a redo ack)
///    and the recovery barrier is closed (every registered device reported
///    `RecoveryDone` after the last server restart).
pub fn run(scenario: &Scenario, plan: &FaultPlan) -> Verdict {
    let mut sys = scenario.build();
    // With the `model` feature, every run also records a client/server/
    // device event history and submits it to the pmnet-model checker as a
    // fourth invariant. Recording is pure observation, so enabling it
    // changes no timeline — a passing run's digest line is identical with
    // the feature on or off.
    #[cfg(feature = "model")]
    let recorder = pmnet_model::attach(&mut sys);
    // Every run also carries a flight recorder: bounded per-node rings of
    // recent protocol events, dumped into the verdict (and any failure
    // artifact) when an invariant fires. Telemetry hooks are pure
    // observation — no RNG draws, no scheduled events — so attaching the
    // handle changes no timeline and no digest.
    let telemetry = Telemetry::flight_only(FLIGHT_CAPACITY);
    sys.attach_telemetry(&telemetry);
    let acts = lower_plan(&mut sys, plan);

    // Fabric designs need their coordinator and chain members started
    // (heartbeats, watchdog). Empty on the classic designs, so their
    // digest lines are untouched.
    for &n in &sys.start_nodes.clone() {
        sys.world.start_node(n);
    }
    for &c in &sys.clients.clone() {
        sys.world.start_node(c);
    }
    let end = Time::ZERO + scenario.deadline;
    let slice = Dur::millis(1);
    let mut cursor = sys.world.now();
    let mut next_act = 0;
    while cursor < end {
        let mut stop = (cursor + slice).min(end);
        if let Some(&(t, _)) = acts.get(next_act) {
            stop = stop.min(t.max(cursor));
        }
        sys.world.run_until(stop);
        cursor = stop;
        while let Some(&(t, act)) = acts.get(next_act) {
            if t > cursor {
                break;
            }
            apply_act(&mut sys, act);
            next_act += 1;
        }
        if next_act == acts.len() {
            let all_done = sys
                .clients
                .iter()
                .all(|&c| sys.world.node::<ClientLib>(c).is_finished());
            if all_done || sys.world.pending_events() == 0 {
                break;
            }
        }
    }
    // Settle: let trailing ACKs, recovery replay and GC traffic finish.
    sys.world.run_for(scenario.drain);

    let mut violations = Vec::new();
    let acked = sys.acked_updates();
    let stranded = sys.stranded_log_entries();
    let retry_counters = sys.client_retry_counters();
    let server = sys.world.node::<ServerLib>(sys.server);
    if plan.is_transient() {
        if stranded > 0 {
            violations.push(format!(
                "convergence: {stranded} device log entries stranded after \
                 the drain window"
            ));
        }
        let pending = server.recovery_pending();
        if pending > 0 {
            violations.push(format!(
                "convergence: recovery barrier still open, {pending} \
                 devices never reported RecoveryDone"
            ));
        }
    }
    let (applied, redo_applied) = match audit::verify(server.audit_log(), &acked) {
        Ok(report) => (report.applied as u64, report.redo as u64),
        Err(vs) => {
            for v in &vs {
                violations.push(format!("audit: {v}"));
            }
            let redo = server.counters().redo_applied;
            (server.counters().updates_applied, redo)
        }
    };
    #[cfg(feature = "model")]
    if let Err(d) = pmnet_model::check_system_with(
        &sys,
        &recorder,
        pmnet_model::config_for_apply(scenario.design, scenario.apply_threads),
    ) {
        if std::env::var_os("PMNET_MODEL_DUMP").is_some() {
            eprintln!("{}", d.artifact);
        }
        violations.push(format!("model: {d}"));
    }

    let mut finished_clients = 0;
    for (i, &c) in sys.clients.iter().enumerate() {
        let client = sys.world.node::<ClientLib>(c);
        if client.is_finished() {
            finished_clients += 1;
        } else if plan.is_transient() {
            violations.push(format!(
                "liveness: client {i} finished only {}/{} requests under a \
                 transient plan",
                client.records().len(),
                scenario.requests_per_client,
            ));
        }
    }

    let counters = server.counters();
    let failovers = server
        .fabric_shard_counters()
        .iter()
        .map(|c| c.failovers)
        .sum();
    let mut corrupt_dropped = counters.corrupt_dropped;
    for &d in &sys.devices {
        corrupt_dropped += sys.world.node::<PmnetDevice>(d).counters().corrupt_dropped;
    }
    let client_retries = sys
        .clients
        .iter()
        .map(|&c| {
            let client = sys.world.node::<ClientLib>(c);
            client
                .records()
                .iter()
                .map(|r| u64::from(r.retries))
                .sum::<u64>()
        })
        .sum();

    // Capture the flight timeline only for failing runs: passing verdicts
    // stay lean and `PartialEq` over them keeps asserting what it always
    // did. `PMNET_TELEMETRY_DUMP=1` additionally prints the timeline, the
    // same escape hatch `PMNET_MODEL_DUMP` provides for model counterexamples.
    let flight = if violations.is_empty() {
        None
    } else {
        let dump = telemetry.flight_dump();
        if std::env::var_os("PMNET_TELEMETRY_DUMP").is_some() {
            eprintln!("{dump}");
        }
        Some(dump)
    };

    Verdict {
        passed: violations.is_empty(),
        violations,
        finished_clients,
        acked: acked.len(),
        applied,
        redo_applied,
        duplicates_dropped: counters.duplicates_dropped,
        corrupt_dropped,
        client_retries,
        failed_updates: retry_counters.failed,
        stranded_log_entries: stranded as u64,
        failovers,
        end_ns: sys.world.now().as_nanos(),
        flight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;
    use proptest::prelude::*;

    #[test]
    fn fault_free_plan_passes_everywhere() {
        for design in [
            DesignPoint::PmnetSwitch,
            DesignPoint::PmnetNic,
            DesignPoint::ClientServer,
        ] {
            let v = run(&Scenario::standard(design, 11), &FaultPlan::new());
            assert!(v.passed, "{design:?}: {:?}", v.violations);
            assert_eq!(v.finished_clients, 3, "{design:?}");
            assert_eq!(v.acked, 120, "{design:?}");
        }
    }

    #[test]
    fn same_inputs_give_identical_verdicts() {
        let scenario = Scenario::standard(DesignPoint::PmnetSwitch, 21);
        let mut plan = FaultPlan::new();
        plan.push(
            Dur::micros(200),
            Fault::DropBurst {
                link: LinkTarget::Backbone(1),
                permille: 300,
                dur: Dur::micros(300),
            },
        );
        plan.push(
            Dur::millis(1),
            Fault::ServerCrash {
                downtime: Some(Dur::millis(1)),
            },
        );
        let a = run(&scenario, &plan);
        let b = run(&scenario, &plan);
        assert_eq!(a, b);
        assert!(a.passed, "{:?}", a.violations);
    }

    #[test]
    fn server_crash_forces_redo_replay() {
        let mut plan = FaultPlan::new();
        plan.push(
            Dur::micros(400),
            Fault::ServerCrash {
                downtime: Some(Dur::millis(1)),
            },
        );
        let v = run(&Scenario::standard(DesignPoint::PmnetSwitch, 31), &plan);
        assert!(v.passed, "{:?}", v.violations);
        assert!(v.redo_applied > 0, "recovery must replay from device PM");
    }

    #[test]
    fn corrupt_burst_is_detected_and_repaired() {
        let mut plan = FaultPlan::new();
        plan.push(
            Dur::micros(100),
            Fault::CorruptBurst {
                link: LinkTarget::Backbone(0),
                permille: 200,
                dur: Dur::micros(400),
            },
        );
        let v = run(&Scenario::standard(DesignPoint::PmnetSwitch, 41), &plan);
        assert!(v.passed, "{:?}", v.violations);
        assert!(
            v.corrupt_dropped > 0,
            "corruption must be caught, not absorbed"
        );
    }

    #[test]
    fn client_crash_with_restart_stays_live() {
        let mut plan = FaultPlan::new();
        plan.push(
            Dur::micros(300),
            Fault::ClientCrash {
                client: 1,
                downtime: Some(Dur::millis(1)),
            },
        );
        let v = run(&Scenario::standard(DesignPoint::PmnetSwitch, 51), &plan);
        assert!(v.passed, "{:?}", v.violations);
        assert_eq!(v.finished_clients, 3);
    }

    #[test]
    fn out_of_range_targets_are_ignored() {
        let mut plan = FaultPlan::new();
        plan.push(
            Dur::micros(100),
            Fault::DeviceCrash {
                device: 7,
                downtime: Some(Dur::micros(500)),
            },
        );
        plan.push(
            Dur::micros(150),
            Fault::LinkFlap {
                link: LinkTarget::Backbone(99),
                down_for: Dur::micros(100),
            },
        );
        let v = run(&Scenario::standard(DesignPoint::ClientServer, 61), &plan);
        assert!(v.passed, "{:?}", v.violations);
    }

    #[test]
    fn loss_over_a_crash_window_still_converges() {
        // A drop burst blankets the server crash and the recovery window:
        // RecoveryPolls, redo resends and redo acks are all exposed to
        // loss, yet retransmission plus the recovery barrier must drain
        // every device log and close the barrier before the drain passes.
        let mut plan = FaultPlan::new();
        plan.push(
            Dur::micros(300),
            Fault::DropBurst {
                link: LinkTarget::Backbone(1),
                permille: 400,
                dur: Dur::millis(4),
            },
        );
        plan.push(
            Dur::micros(500),
            Fault::ServerCrash {
                downtime: Some(Dur::millis(1)),
            },
        );
        let v = run(&Scenario::standard(DesignPoint::PmnetSwitch, 81), &plan);
        assert!(v.passed, "{:?}", v.violations);
        assert_eq!(v.stranded_log_entries, 0, "device logs must drain");
        assert!(v.redo_applied > 0, "recovery must replay from device PM");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Property: however a chain-member kill interleaves with client
        /// retries (forced by a loss burst), no update sequence number is
        /// ever applied twice and no acked update is lost — the promoted
        /// backup's replay and the client's retransmissions must collapse
        /// into exactly-once application.
        #[test]
        fn failover_retry_interleavings_never_double_apply(
            seed in 0u64..10_000,
            shard in 0usize..2,
            member in 0usize..2,
            kill_at_us in 50u64..2_000,
            replace in any::<bool>(),
            lossy in any::<bool>(),
            loss_at_us in 5u64..2_000,
            loss_permille in 100u64..400,
            loss_dur_us in 100u64..800,
        ) {
            let mut plan = FaultPlan::new();
            let device = 2 * shard + member;
            let fault = if replace {
                Fault::DeviceReplace { device, downtime: Dur::millis(2) }
            } else {
                Fault::DeviceFail { device }
            };
            plan.push(Dur::micros(kill_at_us), fault);
            if lossy {
                plan.push(
                    Dur::micros(loss_at_us),
                    Fault::DropBurst {
                        link: LinkTarget::Backbone(1),
                        permille: loss_permille as u32,
                        dur: Dur::micros(loss_dur_us),
                    },
                );
            }
            let scenario =
                Scenario::standard(DesignPoint::PmnetSharded { shards: 2 }, seed);
            let v = run(&scenario, &plan);
            prop_assert!(
                !v.violations.iter().any(|s| s.contains("duplicate apply")),
                "double apply under {plan}: {:?}",
                v.violations
            );
            prop_assert!(v.passed, "plan {plan} violated: {:?}", v.violations);
        }
    }

    #[test]
    fn planted_dedup_bug_is_caught_under_duplication() {
        let mut plan = FaultPlan::new();
        plan.push(
            Dur::micros(50),
            Fault::DuplicateBurst {
                link: LinkTarget::Backbone(0),
                permille: 500,
                dur: Dur::millis(2),
            },
        );
        let scenario = Scenario::standard(DesignPoint::PmnetSwitch, 71).with_dedup_bug();
        let v = run(&scenario, &plan);
        assert!(!v.passed, "the planted bug must fail the audit");
        assert!(
            v.violations.iter().any(|s| s.contains("audit:")),
            "{:?}",
            v.violations
        );
        // The control run without the bug passes the same plan.
        let control = run(&Scenario::standard(DesignPoint::PmnetSwitch, 71), &plan);
        assert!(control.passed, "{:?}", control.violations);
    }
}
