//! Seeded random fault-plan generation.
//!
//! The generator draws from [`pmnet_sim::SimRng`] only, so a campaign seed
//! fully determines every plan it emits. It generates **transient** faults
//! exclusively — crashes always restart, bursts always end — because the
//! runner's liveness invariant (every client eventually finishes) is only
//! checkable when the plan lets the system heal.

use pmnet_core::system::DesignPoint;
use pmnet_sim::{Dur, SimRng};

use crate::plan::{Fault, FaultPlan, LinkTarget};

/// How hard the generator leans on the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Intensity {
    /// One or two mild faults.
    Light,
    /// A few overlapping faults at moderate probabilities.
    Medium,
    /// Many overlapping faults, high impairment probabilities, repeated
    /// crashes.
    Heavy,
}

impl Intensity {
    fn event_count(self, rng: &mut SimRng) -> usize {
        let (lo, hi) = match self {
            Intensity::Light => (1, 2),
            Intensity::Medium => (2, 5),
            Intensity::Heavy => (5, 10),
        };
        lo + rng.index(hi - lo + 1)
    }

    /// Upper bound for impairment probabilities, in per-mille.
    fn max_permille(self) -> u32 {
        match self {
            Intensity::Light => 100,
            Intensity::Medium => 300,
            Intensity::Heavy => 600,
        }
    }
}

/// What the generator may aim at — derived from a design point without
/// building the system, mirroring the `SystemBuilder` topology rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Number of clients (access links).
    pub clients: usize,
    /// Number of PMNet devices on the path.
    pub devices: usize,
    /// Number of backbone hops (merge switch to server, inclusive).
    pub backbone_links: usize,
    /// Number of shard chains on a sharded-fabric design (0 otherwise).
    /// The device list interleaves chains: shard `i`'s primary is device
    /// `2i`, its backup `2i + 1`.
    pub shards: usize,
}

impl Topology {
    /// The topology `SystemBuilder::build` produces for `design` with
    /// `clients` clients. (The runner tolerates out-of-range targets by
    /// ignoring them, so a stale mirror degrades to a no-op fault, not a
    /// panic.)
    pub fn for_design(design: DesignPoint, clients: usize) -> Topology {
        let devices = match design {
            DesignPoint::PmnetSwitch | DesignPoint::PmnetNic => 1,
            DesignPoint::PmnetReplicated { devices } => usize::from(devices),
            // Each shard chain is a primary plus a backup. `shards = 1`
            // normalizes to PMNet-Switch at build time.
            DesignPoint::PmnetSharded { shards } if shards > 1 => 2 * usize::from(shards),
            DesignPoint::PmnetSharded { .. } => 1,
            _ => 0,
        };
        let backbone_links = match design {
            // merge -> dev_0 .. dev_{n-1} -> server
            DesignPoint::PmnetSwitch => 2,
            DesignPoint::PmnetReplicated { devices } => usize::from(devices) + 1,
            // merge -> tor -> dev -> server
            DesignPoint::PmnetNic => 3,
            // merge-fabric -> tor-fabric -> server (the chains hang off
            // both fabrics; `path` carries only the direct spine)
            DesignPoint::PmnetSharded { shards } if shards > 1 => 2,
            // merge -> tor -> server
            DesignPoint::PmnetSharded { .. }
            | DesignPoint::ClientServer
            | DesignPoint::ClientServerReplicated { .. }
            | DesignPoint::ServerSideLog { .. }
            | DesignPoint::ClientSideLog { .. } => 2,
        };
        let shards = match design {
            DesignPoint::PmnetSharded { shards } if shards > 1 => usize::from(shards),
            _ => 0,
        };
        Topology {
            clients,
            devices,
            backbone_links,
            shards,
        }
    }
}

fn pick_link(rng: &mut SimRng, topo: &Topology) -> LinkTarget {
    // Backbone links carry every client's traffic, so weight them higher.
    if topo.clients > 0 && rng.chance(0.35) {
        LinkTarget::Access(rng.index(topo.clients))
    } else {
        LinkTarget::Backbone(rng.index(topo.backbone_links))
    }
}

fn pick_dur(rng: &mut SimRng, lo_us: u64, hi_us: u64) -> Dur {
    Dur::micros(rng.uniform_u64(lo_us..hi_us + 1))
}

fn pick_permille(rng: &mut SimRng, intensity: Intensity) -> u32 {
    // At least 5% so the fault is not a statistical no-op.
    50 + rng.uniform_u64(0..u64::from(intensity.max_permille() - 50) + 1) as u32
}

/// Generates one transient fault plan. Fault times land in the first 60%
/// of `horizon` so the system always has healing room before the runner's
/// deadline; burst and downtime windows are bounded well below `horizon`.
pub fn generate_plan(
    rng: &mut SimRng,
    topo: &Topology,
    intensity: Intensity,
    horizon: Dur,
) -> FaultPlan {
    let mut plan = FaultPlan::new();
    let n = intensity.event_count(rng);
    let horizon_us = (horizon.as_nanos() / 1000).max(100);
    let latest_us = horizon_us * 6 / 10;
    // Crash downtimes: long enough to matter, short enough to heal.
    let crash_down = |rng: &mut SimRng| Some(pick_dur(rng, 300, 2_000));
    for _ in 0..n {
        let at = Dur::micros(5 + rng.uniform_u64(0..latest_us));
        // Nine fault kinds; device-targeted ones only when devices exist.
        let kinds = if topo.devices > 0 { 9 } else { 6 };
        let fault = match rng.index(kinds) {
            0 => Fault::ServerCrash {
                downtime: crash_down(rng),
            },
            1 => Fault::ClientCrash {
                client: rng.index(topo.clients),
                downtime: crash_down(rng),
            },
            2 => Fault::LinkFlap {
                link: pick_link(rng, topo),
                down_for: pick_dur(rng, 50, 400),
            },
            3 => Fault::DropBurst {
                link: pick_link(rng, topo),
                permille: pick_permille(rng, intensity),
                dur: pick_dur(rng, 50, 500),
            },
            4 => Fault::DuplicateBurst {
                link: pick_link(rng, topo),
                permille: pick_permille(rng, intensity),
                dur: pick_dur(rng, 50, 500),
            },
            5 => Fault::ReorderBurst {
                link: pick_link(rng, topo),
                permille: pick_permille(rng, intensity),
                extra: pick_dur(rng, 20, 120),
                dur: pick_dur(rng, 50, 500),
            },
            6 => Fault::CorruptBurst {
                link: pick_link(rng, topo),
                // Corruption is aggressive: cap lower so verification has
                // clean copies to work with inside the burst.
                permille: pick_permille(rng, intensity).min(250),
                dur: pick_dur(rng, 50, 300),
            },
            7 => Fault::DeviceCrash {
                device: rng.index(topo.devices),
                downtime: crash_down(rng),
            },
            _ => Fault::PmSpike {
                device: rng.index(topo.devices),
                factor: 2 + rng.uniform_u64(0..49) as u32,
                dur: pick_dur(rng, 100, 800),
            },
        };
        plan.push(at, fault);
    }
    plan
}

/// Generates a transient plan aimed specifically at the recovery
/// handshake: a server crash whose downtime and recovery window are
/// blanketed by loss bursts on the backbone, so `RecoveryPoll`s, redo
/// resends, redo acks and `RecoveryDone` notifications are all exposed
/// to loss. Optionally a second, earlier burst disturbs the workload so
/// the device log holds entries when the crash lands.
pub fn generate_lossy_recovery_plan(rng: &mut SimRng, topo: &Topology, horizon: Dur) -> FaultPlan {
    let mut plan = FaultPlan::new();
    let horizon_us = (horizon.as_nanos() / 1000).max(2_000);
    // The crash lands in the first half so downtime + recovery + healing
    // all fit before the runner's deadline.
    let crash_at_us = 200 + rng.uniform_u64(0..horizon_us / 2);
    let downtime = pick_dur(rng, 500, 1_500);
    plan.push(
        Dur::micros(crash_at_us),
        Fault::ServerCrash {
            downtime: Some(downtime),
        },
    );
    // One to three loss bursts overlapping the crash/recovery window:
    // they start before or right at the restore instant and extend into
    // the poll/resend exchange.
    let bursts = 1 + rng.index(3);
    let restore_us = crash_at_us + downtime.as_nanos() / 1000;
    for _ in 0..bursts {
        let start = crash_at_us + rng.uniform_u64(0..(restore_us - crash_at_us) + 300);
        plan.push(
            Dur::micros(start),
            Fault::DropBurst {
                link: LinkTarget::Backbone(rng.index(topo.backbone_links)),
                permille: 150 + rng.uniform_u64(0..350) as u32,
                dur: pick_dur(rng, 200, 1_200),
            },
        );
    }
    // Half the plans also stress the pre-crash workload so the log is
    // non-trivially populated when power fails.
    if rng.chance(0.5) {
        plan.push(
            Dur::micros(5 + rng.uniform_u64(0..crash_at_us.max(6) - 5)),
            Fault::DropBurst {
                link: pick_link(rng, topo),
                permille: pick_permille(rng, Intensity::Medium),
                dur: pick_dur(rng, 100, 500),
            },
        );
    }
    plan
}

/// Generates a transient plan aimed at chained-replica failover on a
/// sharded fabric (`topo.shards >= 1` required): at least one shard loses
/// a chain member mid-traffic — fail-stopped for good ([`Fault::DeviceFail`])
/// or replaced after a downtime long past the fencing decision
/// ([`Fault::DeviceReplace`], exercising the zombie re-fence path). At
/// most one member per shard is killed, so every chain keeps a survivor
/// to promote. Some plans also crash the server near the kill so the
/// failover's log replay lands inside an open recovery barrier, and some
/// blanket the window with a backbone loss burst.
pub fn generate_failover_plan(rng: &mut SimRng, topo: &Topology, horizon: Dur) -> FaultPlan {
    assert!(topo.shards >= 1, "failover plans need a sharded topology");
    let mut plan = FaultPlan::new();
    let horizon_us = (horizon.as_nanos() / 1000).max(2_000);
    let latest_us = horizon_us * 6 / 10;
    // Kill a member in each shard independently; re-roll until at least
    // one shard is hit so no plan is a vacuous control run.
    let mut hit = vec![false; topo.shards];
    while !hit.iter().any(|&h| h) {
        for h in &mut hit {
            *h = rng.chance(0.6);
        }
    }
    for (shard, &h) in hit.iter().enumerate() {
        if !h {
            continue;
        }
        // Primaries hold the interesting state (withheld acks, chain
        // pendings), so aim at them more often than backups.
        let member = if rng.chance(0.7) { 0 } else { 1 };
        let device = 2 * shard + member;
        let at = Dur::micros(100 + rng.uniform_u64(0..latest_us));
        let fault = if rng.chance(0.5) {
            Fault::DeviceFail { device }
        } else {
            // Long past detection (heartbeat timeout is microseconds), so
            // the replacement always comes back as a fenced zombie.
            Fault::DeviceReplace {
                device,
                downtime: pick_dur(rng, 1_000, 3_000),
            }
        };
        plan.push(at, fault);
    }
    // A third of the plans crash the server right around the first kill:
    // the fence/promote/re-home sequence then races an open recovery
    // barrier and the staged-log replay.
    if rng.chance(0.33) {
        let first_kill_us = plan.events[0].at.as_nanos() / 1000;
        let at = first_kill_us.saturating_sub(100) + rng.uniform_u64(0..400);
        plan.push(
            Dur::micros(at.max(5)),
            Fault::ServerCrash {
                downtime: Some(pick_dur(rng, 500, 1_500)),
            },
        );
    }
    // And some add loss on the spine, so heartbeats, fences, promotes and
    // steering updates are themselves exposed to drops.
    if rng.chance(0.4) {
        plan.push(
            Dur::micros(5 + rng.uniform_u64(0..latest_us)),
            Fault::DropBurst {
                link: LinkTarget::Backbone(rng.index(topo.backbone_links)),
                permille: 100 + rng.uniform_u64(0..250) as u32,
                dur: pick_dur(rng, 200, 1_000),
            },
        );
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_seed_deterministic() {
        let topo = Topology::for_design(DesignPoint::PmnetSwitch, 3);
        let a = generate_plan(
            &mut SimRng::seed(9),
            &topo,
            Intensity::Medium,
            Dur::millis(8),
        );
        let b = generate_plan(
            &mut SimRng::seed(9),
            &topo,
            Intensity::Medium,
            Dur::millis(8),
        );
        assert_eq!(a, b);
        let c = generate_plan(
            &mut SimRng::seed(10),
            &topo,
            Intensity::Medium,
            Dur::millis(8),
        );
        assert_ne!(a, c, "different seeds should differ (w.h.p.)");
    }

    #[test]
    fn generated_plans_are_transient_and_in_horizon() {
        let topo = Topology::for_design(DesignPoint::PmnetNic, 4);
        let mut rng = SimRng::seed(3);
        for _ in 0..200 {
            let p = generate_plan(&mut rng, &topo, Intensity::Heavy, Dur::millis(8));
            assert!(!p.is_empty());
            assert!(p.is_transient(), "generator must not emit permanent faults");
            for e in &p.events {
                assert!(e.at <= Dur::micros(5 + 8000 * 6 / 10));
            }
        }
    }

    #[test]
    fn no_device_faults_without_devices() {
        let topo = Topology::for_design(DesignPoint::ClientServer, 2);
        assert_eq!(topo.devices, 0);
        let mut rng = SimRng::seed(4);
        for _ in 0..200 {
            let p = generate_plan(&mut rng, &topo, Intensity::Heavy, Dur::millis(8));
            for e in &p.events {
                assert!(
                    !matches!(e.fault, Fault::DeviceCrash { .. } | Fault::PmSpike { .. }),
                    "device fault generated for a deviceless design: {e}"
                );
            }
        }
    }

    #[test]
    fn intensity_scales_event_count() {
        let topo = Topology::for_design(DesignPoint::PmnetSwitch, 3);
        let mut rng = SimRng::seed(5);
        for _ in 0..100 {
            let l = generate_plan(&mut rng, &topo, Intensity::Light, Dur::millis(8)).len();
            assert!((1..=2).contains(&l));
            let h = generate_plan(&mut rng, &topo, Intensity::Heavy, Dur::millis(8)).len();
            assert!((5..=10).contains(&h));
        }
    }

    #[test]
    fn topology_mirror_matches_built_systems() {
        use pmnet_core::system::SystemBuilder;
        use pmnet_core::SystemConfig;
        for design in [
            DesignPoint::PmnetSwitch,
            DesignPoint::PmnetNic,
            DesignPoint::ClientServer,
            DesignPoint::PmnetReplicated { devices: 3 },
        ] {
            let mut b = SystemBuilder::new(design, SystemConfig::default());
            for _ in 0..2 {
                b = b.client(Box::new(pmnet_core::system::MicroSource::updates(1, 16)));
            }
            let sys = b.build(1);
            let topo = Topology::for_design(design, 2);
            assert_eq!(topo.devices, sys.devices.len(), "{design:?}");
            assert_eq!(topo.backbone_links, sys.path.len() - 1, "{design:?}");
        }
    }
}
