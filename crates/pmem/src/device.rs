//! Timing and capacity model of a persistent-memory module.
//!
//! Models the PM attached to a PMNet device (the FPGA's battery-backed
//! DRAM: 273 ns write latency, 2.5 GB/s — Sections V-A and VII) as a single
//! serial resource: accesses occupy the module for
//! `latency + bytes/bandwidth` and queue behind one another. The PMNet
//! device bounds this queue with the Eq. 2 BDP-sized log queue; queue
//! occupancy is exposed so callers can enforce that bound.

use pmnet_sim::{Dur, Time};

/// Static parameters of a PM module.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PmDeviceConfig {
    /// Fixed latency of a write (device DRAM write through the FPGA DMA
    /// engine: 273 ns, Section V-A).
    pub write_latency: Dur,
    /// Fixed latency of a read (Eq. 2 uses 100 ns as the PM access time).
    pub read_latency: Dur,
    /// Sustained bandwidth in bytes per second (2.5 GB/s, Section VII).
    pub bandwidth_bytes_per_sec: u64,
    /// Usable capacity in bytes (the VCU118 board has 2 GB, Section V-A).
    pub capacity_bytes: u64,
}

impl PmDeviceConfig {
    /// The paper's FPGA board PM (Section V-A/VII).
    pub fn fpga_board() -> PmDeviceConfig {
        PmDeviceConfig {
            write_latency: Dur::nanos(273),
            read_latency: Dur::nanos(100),
            bandwidth_bytes_per_sec: 2_500_000_000,
            capacity_bytes: 2 * 1024 * 1024 * 1024,
        }
    }

    /// Returns a copy with a different write latency (for the media-sweep
    /// ablation: NVDIMM / STT-RAM / slower Optane generations).
    pub fn with_write_latency(mut self, d: Dur) -> PmDeviceConfig {
        self.write_latency = d;
        self
    }

    /// Returns a copy with a different capacity.
    pub fn with_capacity(mut self, bytes: u64) -> PmDeviceConfig {
        self.capacity_bytes = bytes;
        self
    }
}

/// Access counters of a [`PmDevice`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PmDeviceCounters {
    /// Completed writes.
    pub writes: u64,
    /// Completed reads.
    pub reads: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Bytes read.
    pub bytes_read: u64,
}

/// A PM module as a serial timed resource with capacity accounting.
///
/// # Example
///
/// ```
/// use pmnet_pmem::{PmDevice, PmDeviceConfig};
/// use pmnet_sim::{Dur, Time};
///
/// let mut pm = PmDevice::new(PmDeviceConfig::fpga_board());
/// let done = pm.schedule_write(Time::ZERO, 100);
/// // 273 ns latency + 100 B / 2.5 GB/s = 40 ns occupancy.
/// assert_eq!(done, Time::ZERO + Dur::nanos(313));
/// ```
#[derive(Debug, Clone)]
pub struct PmDevice {
    config: PmDeviceConfig,
    busy_until: Time,
    used_bytes: u64,
    counters: PmDeviceCounters,
    slowdown: u32,
}

impl PmDevice {
    /// Creates an idle, empty device.
    pub fn new(config: PmDeviceConfig) -> PmDevice {
        PmDevice {
            config,
            busy_until: Time::ZERO,
            used_bytes: 0,
            counters: PmDeviceCounters::default(),
            slowdown: 1,
        }
    }

    /// Sets a transient latency/bandwidth degradation factor (`1` =
    /// nominal). Fault injectors use this to model media slowdowns —
    /// thermal throttling, wear, a misbehaving DIMM — without rebuilding
    /// the device.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn set_slowdown(&mut self, factor: u32) {
        assert!(factor > 0, "slowdown factor must be at least 1");
        self.slowdown = factor;
    }

    /// The current slowdown factor.
    pub fn slowdown(&self) -> u32 {
        self.slowdown
    }

    /// The device configuration.
    pub fn config(&self) -> PmDeviceConfig {
        self.config
    }

    /// Access counters.
    pub fn counters(&self) -> PmDeviceCounters {
        self.counters
    }

    /// Bytes currently allocated.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Free capacity in bytes.
    pub fn free_bytes(&self) -> u64 {
        self.config.capacity_bytes - self.used_bytes
    }

    /// How long a newly offered access would wait before starting.
    pub fn queue_delay(&self, now: Time) -> Dur {
        self.busy_until.saturating_since(now)
    }

    /// Bytes of work currently queued ahead of a new access, expressed via
    /// the device bandwidth (used to enforce the Eq. 2 log-queue bound).
    pub fn queued_bytes(&self, now: Time) -> u64 {
        let d = self.queue_delay(now).as_secs_f64();
        (d * self.config.bandwidth_bytes_per_sec as f64) as u64
    }

    fn occupy(&mut self, now: Time, latency: Dur, bytes: u32) -> Time {
        // `for_bytes_at` takes a bit-rate; the device bandwidth is in bytes.
        let transfer = Dur::for_bytes_at(
            u64::from(bytes) * u64::from(self.slowdown),
            self.config.bandwidth_bytes_per_sec * 8,
        );
        let latency = latency * u64::from(self.slowdown);
        let start = now.max(self.busy_until);
        self.busy_until = start + transfer;
        self.busy_until + latency
    }

    /// Schedules a `bytes`-byte write starting no earlier than `now`;
    /// returns the completion (persistence) instant.
    pub fn schedule_write(&mut self, now: Time, bytes: u32) -> Time {
        let done = self.occupy(now, self.config.write_latency, bytes);
        self.counters.writes += 1;
        self.counters.bytes_written += u64::from(bytes);
        done
    }

    /// Schedules a `bytes`-byte read starting no earlier than `now`;
    /// returns the completion instant.
    pub fn schedule_read(&mut self, now: Time, bytes: u32) -> Time {
        let done = self.occupy(now, self.config.read_latency, bytes);
        self.counters.reads += 1;
        self.counters.bytes_read += u64::from(bytes);
        done
    }

    /// Reserves `bytes` of capacity; returns false if the device is full.
    pub fn alloc(&mut self, bytes: u64) -> bool {
        if self.free_bytes() >= bytes {
            self.used_bytes += bytes;
            true
        } else {
            false
        }
    }

    /// Releases `bytes` of capacity.
    ///
    /// # Panics
    ///
    /// Panics if more is freed than was allocated.
    pub fn release(&mut self, bytes: u64) {
        assert!(bytes <= self.used_bytes, "release underflow");
        self.used_bytes -= bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> PmDevice {
        PmDevice::new(PmDeviceConfig::fpga_board())
    }

    #[test]
    fn single_write_latency_matches_paper() {
        let mut pm = dev();
        // 100 B: 40 ns transfer at 2.5 GB/s + 273 ns latency.
        assert_eq!(pm.schedule_write(Time::ZERO, 100), Time::from_nanos(313));
    }

    #[test]
    fn writes_serialize_on_the_device() {
        let mut pm = dev();
        let d1 = pm.schedule_write(Time::ZERO, 1000); // transfer 400 ns
        let d2 = pm.schedule_write(Time::ZERO, 1000);
        assert_eq!(d1, Time::from_nanos(673));
        // Second starts after first transfer (400 ns), not after d1.
        assert_eq!(d2, Time::from_nanos(1073));
    }

    #[test]
    fn queue_delay_reflects_backlog() {
        let mut pm = dev();
        assert_eq!(pm.queue_delay(Time::ZERO), Dur::ZERO);
        pm.schedule_write(Time::ZERO, 2500); // 1 us transfer
        assert_eq!(pm.queue_delay(Time::ZERO), Dur::micros(1));
        assert_eq!(pm.queued_bytes(Time::ZERO), 2500);
        // Once time passes the backlog, delay decays to zero.
        assert_eq!(pm.queue_delay(Time::from_nanos(2_000)), Dur::ZERO);
    }

    #[test]
    fn reads_use_read_latency() {
        let mut pm = dev();
        assert_eq!(pm.schedule_read(Time::ZERO, 100), Time::from_nanos(140));
    }

    #[test]
    fn capacity_accounting() {
        let mut pm = PmDevice::new(PmDeviceConfig::fpga_board().with_capacity(1000));
        assert!(pm.alloc(600));
        assert!(!pm.alloc(500));
        assert!(pm.alloc(400));
        assert_eq!(pm.free_bytes(), 0);
        pm.release(1000);
        assert_eq!(pm.used_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn over_release_panics() {
        let mut pm = dev();
        pm.release(1);
    }

    #[test]
    fn slowdown_scales_latency_and_transfer() {
        let mut pm = dev();
        pm.set_slowdown(10);
        // 100 B: (40 ns transfer + 273 ns latency) x 10.
        assert_eq!(pm.schedule_write(Time::ZERO, 100), Time::from_nanos(3130));
        pm.set_slowdown(1);
        assert_eq!(pm.queue_delay(Time::from_nanos(400)), Dur::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_slowdown_panics() {
        dev().set_slowdown(0);
    }

    #[test]
    fn counters_accumulate() {
        let mut pm = dev();
        pm.schedule_write(Time::ZERO, 10);
        pm.schedule_write(Time::ZERO, 20);
        pm.schedule_read(Time::ZERO, 5);
        let c = pm.counters();
        assert_eq!(c.writes, 2);
        assert_eq!(c.bytes_written, 30);
        assert_eq!(c.reads, 1);
        assert_eq!(c.bytes_read, 5);
    }
}
