//! Persistent-memory substrate for the PMNet reproduction.
//!
//! The paper's system has PM in two places: on the **network device** (the
//! FPGA's battery-backed DRAM that holds the request log, Section V-A) and
//! on the **server** (Intel Optane DCPMM holding the application state,
//! Table II). This crate models both:
//!
//! * [`PmDevice`] — a latency/bandwidth timing model of a PM module
//!   (write 273 ns, 2.5 GB/s by default, matching Section V-A/VII), used by
//!   the PMNet device's log store and by server-side cost accounting.
//! * [`PmArena`] — a byte-addressable persistence simulation with
//!   cache-line granularity: stores are volatile until flushed and fenced;
//!   [`PmArena::crash`] persists a *random subset* of unfenced lines, the
//!   adversarial semantics real write-back caches have.
//! * [`Wal`] — a checksummed write-ahead redo log on a [`PmArena`].
//! * [`kv`] — five key-value structures mirroring the paper's PMDK
//!   workloads (B-Tree, C-Tree/crit-bit, RB-Tree, Hashmap, Skip list), each
//!   instrumented with [`kv::OpStats`] so server service times can be
//!   derived from real work done.
//! * [`PersistentKv`] — a crash-consistent store combining a KV structure
//!   with a [`Wal`] and checkpoints; after any crash, recovery replays the
//!   log over the last checkpoint.
//! * [`ploc`] — detectable-recovery primitives ([`Checkpoint`],
//!   [`DetectableCas`]): per-op memento slots persisted before the ack
//!   path observes them, so replaying an op after a crash is exactly-once;
//!   [`kv::DetectableHashMap`] and [`kv::DetectableSkipList`] are built
//!   from them and back concurrent server-side apply.
//!
//! Substitution note (see DESIGN.md): the paper's PMDK workloads run PMDK
//! transactions directly on Optane. We substitute a redo-log +
//! checkpointed-index design with identical recovery semantics — the part
//! of the stack PMNet's protocol actually interacts with — and model PM
//! costs through [`CostModel`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arena;
mod cost;
mod crc32;
mod device;
mod persistent;
mod wal;

pub mod kv;
pub mod ploc;

pub use arena::{ArenaStats, PmArena, PmPtr, LINE};
pub use cost::CostModel;
pub use crc32::{crc32, crc32_finish, crc32_init, crc32_update};
pub use device::{PmDevice, PmDeviceConfig, PmDeviceCounters};
pub use persistent::{KvOp, PersistentKv};
pub use ploc::{CasOutcome, Checkpoint, Crashed, DetectableCas, PlocHeap};
pub use wal::{Wal, WalStats};
