//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! The PMNet header carries a CRC-32 `HashVal` that the device uses to
//! index its log (Section IV-A1); the WAL uses the same code to checksum
//! records. Implemented locally to keep the dependency set minimal.

const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Computes the CRC-32 (IEEE) of `data`.
///
/// ```
/// use pmnet_pmem::crc32;
/// // Well-known check value for the ASCII string "123456789".
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_any_bit_flip() {
        let base = crc32(b"pmnet");
        let mut data = *b"pmnet";
        for i in 0..data.len() {
            for bit in 0..8 {
                data[i] ^= 1 << bit;
                assert_ne!(crc32(&data), base, "flip at byte {i} bit {bit}");
                data[i] ^= 1 << bit;
            }
        }
    }
}
