//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! The PMNet header carries a CRC-32 `HashVal` that the device uses to
//! index its log (Section IV-A1); the WAL uses the same code to checksum
//! records. Implemented locally to keep the dependency set minimal.
//!
//! Two interfaces over the same kernels:
//!
//! * [`crc32`] — one-shot.
//! * [`crc32_init`] / [`crc32_update`] / [`crc32_finish`] — streaming,
//!   for checksumming logically concatenated parts (header fields + a
//!   payload) without materializing the concatenation in a scratch `Vec`.
//!
//! Two kernels compute the same values:
//!
//! * Slice-by-16 tables — sixteen lookups fold sixteen input bytes per
//!   iteration; the serial dependency between iterations is a single XOR
//!   into the next chunk's first word, so the loads pipeline freely.
//!   Always available, and used for short/remainder input.
//! * PCLMULQDQ folding (x86-64, runtime-detected) — the carry-less
//!   multiply reduction from Intel's "Fast CRC Computation for Generic
//!   Polynomials" paper: four 128-bit lanes fold 64 bytes per iteration,
//!   collapsed by a Barrett reduction. Roughly 5-10x the table kernel on
//!   the ~0.5-1.5 KiB payloads the protocol checksums per frame.

const POLY: u32 = 0xEDB8_8320;

/// Sixteen tables: `TABLES[0]` is the classic CRC table; `TABLES[k][b]`
/// is the CRC of byte `b` followed by `k` zero bytes, so a 16-byte block
/// can be folded with one lookup per byte and no loop-carried dependency
/// inside the block.
const fn build_tables() -> [[u32; 256]; 16] {
    let mut tables = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 16 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 16] = build_tables();

#[inline]
fn update_raw(c: u32, data: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if data.len() >= 64
        && is_x86_feature_detected!("pclmulqdq")
        && is_x86_feature_detected!("sse4.1")
    {
        // SAFETY: feature presence just checked.
        return unsafe { update_pclmul(c, data) };
    }
    update_tables(c, data)
}

/// The PCLMULQDQ fold: the CRC state is XORed into the first 16-byte
/// block (the CRC is linear over GF(2), so this is equivalent to seeding
/// the register), four lanes fold 64 bytes per step, then the lanes and
/// any 16-byte stragglers collapse into one 128-bit value that a Barrett
/// reduction maps back to the 32-bit register. Sub-16-byte tails reuse
/// the table kernel. Constants are x^N mod P precomputations for the
/// reflected IEEE polynomial, from the Intel paper (also used verbatim in
/// zlib's crc32_simd and the crc32fast crate).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "pclmulqdq", enable = "sse4.1")]
unsafe fn update_pclmul(crc: u32, data: &[u8]) -> u32 {
    use std::arch::x86_64::*;

    const K1: i64 = 0x0000_0001_5444_2bd4;
    const K2: i64 = 0x0000_0001_c6e4_1596;
    const K3: i64 = 0x0000_0001_7519_97d0;
    const K4: i64 = 0x0000_0000_ccaa_009e;
    const K5: i64 = 0x0000_0001_63cd_6124;
    const MU: i64 = 0x0000_0001_f701_1641;
    const POLY_FULL: i64 = 0x0000_0001_db71_0641;

    #[inline]
    unsafe fn fold16(a: __m128i, b: __m128i, keys: __m128i) -> __m128i {
        let lo = _mm_clmulepi64_si128(a, keys, 0x00);
        let hi = _mm_clmulepi64_si128(a, keys, 0x11);
        _mm_xor_si128(_mm_xor_si128(b, lo), hi)
    }

    let mut ptr = data.as_ptr().cast::<__m128i>();
    let mut len = data.len();

    let mut x3 = _mm_loadu_si128(ptr);
    let mut x2 = _mm_loadu_si128(ptr.add(1));
    let mut x1 = _mm_loadu_si128(ptr.add(2));
    let mut x0 = _mm_loadu_si128(ptr.add(3));
    ptr = ptr.add(4);
    len -= 64;
    x3 = _mm_xor_si128(x3, _mm_cvtsi32_si128(crc as i32));

    let k1k2 = _mm_set_epi64x(K2, K1);
    while len >= 64 {
        x3 = fold16(x3, _mm_loadu_si128(ptr), k1k2);
        x2 = fold16(x2, _mm_loadu_si128(ptr.add(1)), k1k2);
        x1 = fold16(x1, _mm_loadu_si128(ptr.add(2)), k1k2);
        x0 = fold16(x0, _mm_loadu_si128(ptr.add(3)), k1k2);
        ptr = ptr.add(4);
        len -= 64;
    }

    let k3k4 = _mm_set_epi64x(K4, K3);
    let mut x = fold16(x3, x2, k3k4);
    x = fold16(x, x1, k3k4);
    x = fold16(x, x0, k3k4);
    while len >= 16 {
        x = fold16(x, _mm_loadu_si128(ptr), k3k4);
        ptr = ptr.add(1);
        len -= 16;
    }

    // 128 -> 64 bits.
    let low32 = _mm_set_epi32(0, 0, 0, !0);
    let x = _mm_xor_si128(_mm_clmulepi64_si128(x, k3k4, 0x10), _mm_srli_si128(x, 8));
    let x = _mm_xor_si128(
        _mm_clmulepi64_si128(_mm_and_si128(x, low32), _mm_set_epi64x(0, K5), 0x00),
        _mm_srli_si128(x, 4),
    );

    // Barrett reduction, 64 -> 32 bits.
    let pu = _mm_set_epi64x(MU, POLY_FULL);
    let t1 = _mm_clmulepi64_si128(_mm_and_si128(x, low32), pu, 0x10);
    let t2 = _mm_xor_si128(_mm_clmulepi64_si128(_mm_and_si128(t1, low32), pu, 0x00), x);
    let c = _mm_extract_epi32(t2, 1) as u32;

    // Remaining 0..16 tail bytes through the table kernel.
    update_tables(c, std::slice::from_raw_parts(ptr.cast::<u8>(), len))
}

#[inline]
fn update_tables(mut c: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(16);
    for chunk in &mut chunks {
        // The fixed-size view compiles the four word reads into plain
        // unaligned loads (per-byte indexing defeats that).
        let block: &[u8; 16] = chunk.try_into().unwrap();
        let w0 = u32::from_le_bytes([block[0], block[1], block[2], block[3]]) ^ c;
        let w1 = u32::from_le_bytes([block[4], block[5], block[6], block[7]]);
        let w2 = u32::from_le_bytes([block[8], block[9], block[10], block[11]]);
        let w3 = u32::from_le_bytes([block[12], block[13], block[14], block[15]]);
        c = TABLES[15][(w0 & 0xFF) as usize]
            ^ TABLES[14][((w0 >> 8) & 0xFF) as usize]
            ^ TABLES[13][((w0 >> 16) & 0xFF) as usize]
            ^ TABLES[12][(w0 >> 24) as usize]
            ^ TABLES[11][(w1 & 0xFF) as usize]
            ^ TABLES[10][((w1 >> 8) & 0xFF) as usize]
            ^ TABLES[9][((w1 >> 16) & 0xFF) as usize]
            ^ TABLES[8][(w1 >> 24) as usize]
            ^ TABLES[7][(w2 & 0xFF) as usize]
            ^ TABLES[6][((w2 >> 8) & 0xFF) as usize]
            ^ TABLES[5][((w2 >> 16) & 0xFF) as usize]
            ^ TABLES[4][(w2 >> 24) as usize]
            ^ TABLES[3][(w3 & 0xFF) as usize]
            ^ TABLES[2][((w3 >> 8) & 0xFF) as usize]
            ^ TABLES[1][((w3 >> 16) & 0xFF) as usize]
            ^ TABLES[0][(w3 >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = TABLES[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

/// Computes the CRC-32 (IEEE) of `data`.
///
/// ```
/// use pmnet_pmem::crc32;
/// // Well-known check value for the ASCII string "123456789".
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    crc32_finish(crc32_update(crc32_init(), data))
}

/// Starts a streaming CRC-32 computation.
#[inline]
pub fn crc32_init() -> u32 {
    0xFFFF_FFFF
}

/// Folds `data` into a streaming CRC-32 state. Feeding parts in sequence
/// yields exactly the CRC of their concatenation.
#[inline]
pub fn crc32_update(state: u32, data: &[u8]) -> u32 {
    update_raw(state, data)
}

/// Finalizes a streaming CRC-32 state into the checksum value.
#[inline]
pub fn crc32_finish(state: u32) -> u32 {
    state ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic loop the slice-by-16 kernel must match bit for bit.
    fn crc32_bytewise(data: &[u8]) -> u32 {
        let mut c = 0xFFFF_FFFFu32;
        for &b in data {
            c = TABLES[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
        }
        c ^ 0xFFFF_FFFF
    }

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn slice_by_16_matches_bytewise_at_every_length() {
        // Cover every chunk remainder (0..16) and lengths spanning several
        // 16-byte blocks, with non-trivial byte patterns.
        let data: Vec<u8> = (0..257u32)
            .map(|i| (i.wrapping_mul(167) ^ (i >> 3)) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(
                crc32(&data[..len]),
                crc32_bytewise(&data[..len]),
                "mismatch at len {len}"
            );
        }
    }

    #[test]
    fn streaming_matches_one_shot_at_every_split() {
        let data = b"pmnet: in-network data persistence, 2021";
        let whole = crc32(data);
        for split in 0..=data.len() {
            let s = crc32_update(crc32_init(), &data[..split]);
            let s = crc32_update(s, &data[split..]);
            assert_eq!(crc32_finish(s), whole, "mismatch at split {split}");
        }
        // Three-way split, arbitrary points.
        let s = crc32_update(crc32_init(), &data[..7]);
        let s = crc32_update(s, &data[7..29]);
        let s = crc32_update(s, &data[29..]);
        assert_eq!(crc32_finish(s), whole);
    }

    #[test]
    fn kernels_agree_on_multi_block_payloads() {
        // Past 64 bytes the folding kernel takes over where available;
        // these lengths cover several 64-byte folds plus every 16-byte
        // straggler count and tail length around realistic payload sizes.
        let data: Vec<u8> = (0..2048u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 7) as u8)
            .collect();
        for len in [64, 65, 79, 80, 127, 128, 500, 512, 534, 1024, 1500, 2048] {
            assert_eq!(
                crc32(&data[..len]),
                crc32_bytewise(&data[..len]),
                "mismatch at len {len}"
            );
        }
        // Streaming hand-off between kernels: every split point of a
        // payload long enough that both sides can take the folding path.
        let body = &data[..600];
        let whole = crc32(body);
        for split in 0..=body.len() {
            let s = crc32_update(crc32_init(), &body[..split]);
            let s = crc32_update(s, &body[split..]);
            assert_eq!(crc32_finish(s), whole, "mismatch at split {split}");
        }
    }

    #[test]
    fn sensitive_to_any_bit_flip() {
        let base = crc32(b"pmnet");
        let mut data = *b"pmnet";
        for i in 0..data.len() {
            for bit in 0..8 {
                data[i] ^= 1 << bit;
                assert_ne!(crc32(&data), base, "flip at byte {i} bit {bit}");
                data[i] ^= 1 << bit;
            }
        }
    }
}
