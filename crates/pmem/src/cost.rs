//! Converts measured work (index traversal + persistence operations) into
//! simulated service time.
//!
//! The paper's server request handler runs a PMDK workload on Optane; its
//! processing time is what PMNet moves off the critical path. Rather than
//! hard-coding a per-workload constant, the reproduction derives each
//! request's handler time from the work the real index structure and WAL
//! actually performed, using per-operation costs calibrated against
//! published Optane characteristics (Izraelevitz et al. [49], Wang et
//! al. [107]).

use pmnet_sim::Dur;

use crate::kv::OpStats;
use crate::ArenaStats;

/// Per-operation cost parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost per index node visited (pointer chase, likely cache miss).
    pub per_node: Dur,
    /// Cost per key comparison.
    pub per_comparison: Dur,
    /// Cost per byte moved by the index (copies).
    pub per_index_byte: Dur,
    /// Cost per PM line flush (`clwb` + Optane write path).
    pub per_flush: Dur,
    /// Cost per fence (`sfence` drain).
    pub per_fence: Dur,
    /// Cost per byte written to PM.
    pub per_pm_byte: Dur,
    /// Fixed request overhead (dispatch, parse, reply formatting).
    pub base: Dur,
}

impl CostModel {
    /// Costs calibrated for a PM-backed key-value server on Optane-class
    /// media: ~100 ns per pointer chase into PM, ~400 ns per flushed line,
    /// and a fixed per-operation overhead covering dispatch plus the
    /// PMDK-style transaction begin/commit path (which dominates small
    /// writes on real Optane, per Izraelevitz et al., paper ref. 49).
    pub fn optane_server() -> CostModel {
        CostModel {
            per_node: Dur::nanos(100),
            per_comparison: Dur::nanos(5),
            per_index_byte: Dur::nanos(1),
            per_flush: Dur::nanos(400),
            per_fence: Dur::nanos(150),
            per_pm_byte: Dur::from_nanos_f64(0.4), // 2.5 GB/s media bandwidth
            base: Dur::micros(6),
        }
    }

    /// The handler time implied by the given index and arena work.
    pub fn service_time(&self, idx: OpStats, pm: ArenaStats) -> Dur {
        self.base
            + self.per_node * idx.nodes_visited
            + self.per_comparison * idx.key_comparisons
            + self.per_index_byte * idx.bytes_moved
            + self.per_flush * pm.flushes
            + self.per_fence * pm.fences
            + self.per_pm_byte * pm.bytes_written
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_work_costs_the_base() {
        let m = CostModel::optane_server();
        assert_eq!(
            m.service_time(OpStats::default(), ArenaStats::default()),
            m.base
        );
    }

    #[test]
    fn cost_is_monotonic_in_work() {
        let m = CostModel::optane_server();
        let small = m.service_time(
            OpStats {
                nodes_visited: 5,
                key_comparisons: 10,
                bytes_moved: 100,
            },
            ArenaStats {
                flushes: 2,
                fences: 1,
                bytes_written: 120,
                bytes_read: 0,
            },
        );
        let big = m.service_time(
            OpStats {
                nodes_visited: 50,
                key_comparisons: 100,
                bytes_moved: 1000,
            },
            ArenaStats {
                flushes: 20,
                fences: 10,
                bytes_written: 1200,
                bytes_read: 0,
            },
        );
        assert!(big > small);
        assert!(small > m.base);
    }

    #[test]
    fn realistic_update_lands_in_microsecond_range() {
        // A 100 B update through a modest tree: handler time should be in
        // the single-digit-microsecond ballpark the paper's breakdown
        // implies for PM-backed stores.
        let m = CostModel::optane_server();
        let t = m.service_time(
            OpStats {
                nodes_visited: 8,
                key_comparisons: 30,
                bytes_moved: 220,
            },
            ArenaStats {
                flushes: 3,
                fences: 1,
                bytes_written: 130,
                bytes_read: 0,
            },
        );
        assert!(t >= Dur::micros(6) && t <= Dur::micros(14), "{t}");
    }
}
