//! A checksummed write-ahead (redo) log on a [`PmArena`].
//!
//! Records are appended sequentially as `[len:u32][crc:u32][payload]` and
//! made durable with one flush+fence per append. Recovery scans from the
//! start of the region and stops at the first hole: a zero length, a length
//! that exceeds the region, or a CRC mismatch (a torn record from a crash
//! mid-append). This is the same redo discipline PMNet itself applies to
//! in-flight requests — the logged packet *is* the redo record.

use crate::crc32::crc32;
use crate::{PmArena, PmPtr};

const HEADER: usize = 8;

/// Cumulative WAL counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended since creation/recovery.
    pub appends: u64,
    /// Payload bytes appended.
    pub payload_bytes: u64,
    /// Times the log was truncated by a checkpoint.
    pub resets: u64,
}

/// A write-ahead log living in a fixed region of a [`PmArena`].
#[derive(Debug)]
pub struct Wal {
    region: PmPtr,
    capacity: usize,
    tail: usize,
    stats: WalStats,
}

impl Wal {
    /// Allocates a `capacity`-byte log region in `arena`.
    ///
    /// Returns `None` if the arena cannot fit the region.
    pub fn create(arena: &mut PmArena, capacity: usize) -> Option<Wal> {
        let region = arena.alloc(capacity)?;
        // Durable zero length marks an empty log.
        arena.write(region, &0u32.to_le_bytes());
        arena.persist(region, 4);
        Some(Wal {
            region,
            capacity,
            tail: 0,
            stats: WalStats::default(),
        })
    }

    /// The region base pointer (store it in the arena root for recovery).
    pub fn region(&self) -> PmPtr {
        self.region
    }

    /// The region capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently used (headers + payloads + terminator).
    pub fn used(&self) -> usize {
        self.tail
    }

    /// Counters.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Appends one record durably. Returns `false` (without writing) if the
    /// region cannot hold the record plus its terminator.
    ///
    /// # Panics
    ///
    /// Panics if `payload` is empty (a zero length is the log terminator).
    pub fn append(&mut self, arena: &mut PmArena, payload: &[u8]) -> bool {
        assert!(!payload.is_empty(), "empty WAL record");
        let need = HEADER + payload.len() + 4; // +4 for the next terminator
        if self.tail + need > self.capacity {
            return false;
        }
        let base = PmPtr(self.region.0 + self.tail as u64);
        let crc = crc32(payload);
        // Write payload and CRC first, then the length word: a record only
        // becomes visible to recovery once its length is durable, and the
        // CRC catches a torn length/payload pair.
        arena.write(PmPtr(base.0 + 4), &crc.to_le_bytes());
        arena.write(PmPtr(base.0 + 8), payload);
        // Terminator for the *next* record before exposing this one.
        arena.write(
            PmPtr(base.0 + (HEADER + payload.len()) as u64),
            &0u32.to_le_bytes(),
        );
        arena.write(base, &(payload.len() as u32).to_le_bytes());
        arena.persist(base, HEADER + payload.len() + 4);
        self.tail += HEADER + payload.len();
        self.stats.appends += 1;
        self.stats.payload_bytes += payload.len() as u64;
        true
    }

    /// Scans the region and returns every intact record in append order.
    /// Used after a crash; also rebuilds the in-memory tail.
    pub fn recover(arena: &mut PmArena, region: PmPtr, capacity: usize) -> (Wal, Vec<Vec<u8>>) {
        let mut records = Vec::new();
        let mut off = 0usize;
        loop {
            if off + HEADER > capacity {
                break;
            }
            let base = PmPtr(region.0 + off as u64);
            let len = {
                let mut b = [0u8; 4];
                b.copy_from_slice(arena.read(base, 4));
                u32::from_le_bytes(b) as usize
            };
            if len == 0 || off + HEADER + len > capacity {
                break;
            }
            let crc_stored = {
                let mut b = [0u8; 4];
                b.copy_from_slice(arena.read(PmPtr(base.0 + 4), 4));
                u32::from_le_bytes(b)
            };
            let payload = arena.read(PmPtr(base.0 + 8), len).to_vec();
            if crc32(&payload) != crc_stored {
                break; // torn record: ignore it and everything after
            }
            records.push(payload);
            off += HEADER + len;
        }
        let wal = Wal {
            region,
            capacity,
            tail: off,
            stats: WalStats::default(),
        };
        (wal, records)
    }

    /// Truncates the log (after a checkpoint made its contents redundant).
    pub fn reset(&mut self, arena: &mut PmArena) {
        arena.write(self.region, &0u32.to_le_bytes());
        arena.persist(self.region, 4);
        self.tail = 0;
        self.stats.resets += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmnet_sim::SimRng;

    fn setup(cap: usize) -> (PmArena, Wal) {
        let mut arena = PmArena::new(cap + 4096);
        let wal = Wal::create(&mut arena, cap).unwrap();
        (arena, wal)
    }

    #[test]
    fn append_then_recover_round_trips() {
        let (mut arena, mut wal) = setup(4096);
        for i in 0..10u8 {
            assert!(wal.append(&mut arena, &[i; 10]));
        }
        let (recovered, records) = Wal::recover(&mut arena, wal.region(), wal.capacity());
        assert_eq!(records.len(), 10);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r, &vec![i as u8; 10]);
        }
        assert_eq!(recovered.used(), wal.used());
    }

    #[test]
    fn recovery_after_worst_case_crash_sees_all_fenced_records() {
        let (mut arena, mut wal) = setup(4096);
        for i in 0..5u8 {
            wal.append(&mut arena, &[i; 20]);
        }
        arena.crash_losing_all(); // appends are fenced: nothing to lose
        let (_, records) = Wal::recover(&mut arena, wal.region(), wal.capacity());
        assert_eq!(records.len(), 5);
    }

    #[test]
    fn torn_tail_record_is_discarded() {
        let (mut arena, mut wal) = setup(4096);
        wal.append(&mut arena, b"intact-record");
        // Simulate a torn append: write a plausible header+payload but
        // corrupt the payload relative to the CRC, unfenced.
        let base = PmPtr(wal.region().0 + wal.used() as u64);
        arena.write(PmPtr(base.0 + 4), &0xDEAD_BEEFu32.to_le_bytes());
        arena.write(PmPtr(base.0 + 8), b"torn");
        arena.write(base, &4u32.to_le_bytes());
        let (_, records) = Wal::recover(&mut arena, wal.region(), wal.capacity());
        assert_eq!(records.len(), 1);
        assert_eq!(records[0], b"intact-record");
    }

    #[test]
    fn random_crashes_never_yield_corrupt_records() {
        let mut rng = SimRng::seed(11);
        for trial in 0..30 {
            let (mut arena, mut wal) = setup(8192);
            let n = 3 + trial % 7;
            for i in 0..n {
                wal.append(&mut arena, &[i as u8 + 1; 33]);
            }
            arena.crash(&mut rng);
            let (_, records) = Wal::recover(&mut arena, wal.region(), wal.capacity());
            // All appends were fenced, so all must be recovered intact, in
            // order.
            assert_eq!(records.len(), n);
            for (i, r) in records.iter().enumerate() {
                assert_eq!(r, &vec![i as u8 + 1; 33]);
            }
        }
    }

    #[test]
    fn full_log_rejects_appends() {
        let (mut arena, mut wal) = setup(64);
        assert!(wal.append(&mut arena, &[1; 16]));
        assert!(!wal.append(&mut arena, &[2; 64]));
        // The rejected append must not corrupt the log.
        let (_, records) = Wal::recover(&mut arena, wal.region(), wal.capacity());
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn reset_truncates_durably() {
        let (mut arena, mut wal) = setup(4096);
        wal.append(&mut arena, b"abc");
        wal.reset(&mut arena);
        arena.crash_losing_all();
        let (_, records) = Wal::recover(&mut arena, wal.region(), wal.capacity());
        assert!(records.is_empty());
        assert_eq!(wal.stats().resets, 1);
    }

    #[test]
    fn stats_track_appends() {
        let (mut arena, mut wal) = setup(4096);
        wal.append(&mut arena, &[0; 7]);
        wal.append(&mut arena, &[0; 9]);
        assert_eq!(wal.stats().appends, 2);
        assert_eq!(wal.stats().payload_bytes, 16);
    }

    #[test]
    #[should_panic(expected = "empty WAL record")]
    fn empty_record_panics() {
        let (mut arena, mut wal) = setup(4096);
        wal.append(&mut arena, b"");
    }
}
