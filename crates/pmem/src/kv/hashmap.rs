//! A separate-chaining hash table (the PMDK `hashmap` workload).

use super::{KvStore, OpStats};

const INITIAL_BUCKETS: usize = 16;
const MAX_LOAD_NUM: usize = 3; // resize when len > buckets * 3/4
const MAX_LOAD_DEN: usize = 4;

fn fnv1a(key: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A chained hash map over byte-string keys.
#[derive(Debug, Default)]
pub struct HashMapKv {
    buckets: Vec<Vec<(Vec<u8>, Vec<u8>)>>,
    len: usize,
    stats: OpStats,
}

impl HashMapKv {
    /// Creates an empty map.
    pub fn new() -> HashMapKv {
        HashMapKv {
            buckets: vec![Vec::new(); INITIAL_BUCKETS],
            len: 0,
            stats: OpStats::default(),
        }
    }

    fn bucket_of(&self, key: &[u8]) -> usize {
        (fnv1a(key) % self.buckets.len() as u64) as usize
    }

    fn maybe_grow(&mut self) {
        if self.len * MAX_LOAD_DEN <= self.buckets.len() * MAX_LOAD_NUM {
            return;
        }
        let new_n = self.buckets.len() * 2;
        let mut next = vec![Vec::new(); new_n];
        for bucket in self.buckets.drain(..) {
            for (k, v) in bucket {
                let idx = (fnv1a(&k) % new_n as u64) as usize;
                self.stats.bytes_moved += (k.len() + v.len()) as u64;
                next[idx].push((k, v));
            }
        }
        self.buckets = next;
        self.stats.nodes_visited += new_n as u64;
    }

    /// Current bucket count (exposed for the resizing test).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }
}

impl KvStore for HashMapKv {
    fn name(&self) -> &'static str {
        "hashmap"
    }

    fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        let b = self.bucket_of(key);
        self.stats.nodes_visited += 1;
        for (k, v) in &self.buckets[b] {
            self.stats.key_comparisons += 1;
            if k == key {
                self.stats.bytes_moved += v.len() as u64;
                return Some(v.clone());
            }
        }
        None
    }

    fn insert(&mut self, key: &[u8], value: &[u8]) -> Option<Vec<u8>> {
        let b = self.bucket_of(key);
        self.stats.nodes_visited += 1;
        self.stats.bytes_moved += (key.len() + value.len()) as u64;
        for (k, v) in &mut self.buckets[b] {
            self.stats.key_comparisons += 1;
            if k == key {
                return Some(std::mem::replace(v, value.to_vec()));
            }
        }
        self.buckets[b].push((key.to_vec(), value.to_vec()));
        self.len += 1;
        self.maybe_grow();
        None
    }

    fn remove(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        let b = self.bucket_of(key);
        self.stats.nodes_visited += 1;
        let bucket = &mut self.buckets[b];
        for i in 0..bucket.len() {
            self.stats.key_comparisons += 1;
            if bucket[i].0 == key {
                let (_, v) = bucket.swap_remove(i);
                self.len -= 1;
                self.stats.bytes_moved += v.len() as u64;
                return Some(v);
            }
        }
        None
    }

    fn len(&self) -> usize {
        self.len
    }

    fn take_stats(&mut self) -> OpStats {
        std::mem::take(&mut self.stats)
    }

    fn for_each(&self, f: &mut dyn FnMut(&[u8], &[u8])) {
        for bucket in &self.buckets {
            for (k, v) in bucket {
                f(k, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_under_load() {
        let mut m = HashMapKv::new();
        let start = m.bucket_count();
        for i in 0..1000u32 {
            m.insert(&i.to_be_bytes(), b"v");
        }
        assert!(m.bucket_count() > start * 8);
        // Load factor below threshold afterwards.
        assert!(m.len() * MAX_LOAD_DEN <= m.bucket_count() * MAX_LOAD_NUM);
    }

    #[test]
    fn collisions_are_handled_by_chaining() {
        // With only 16 initial buckets, 64 keys guarantee collisions before
        // the first resize completes; all must remain reachable.
        let mut m = HashMapKv::new();
        for i in 0..64u8 {
            m.insert(&[i], &[i]);
        }
        for i in 0..64u8 {
            assert_eq!(m.get(&[i]), Some(vec![i]));
        }
    }

    #[test]
    fn fnv_distinguishes_keys() {
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_ne!(fnv1a(b""), fnv1a(b"\0"));
    }
}
