//! Key-value index structures mirroring the paper's PMDK workloads
//! (Section VI-A2): B-Tree, C-Tree (crit-bit), RB-Tree, Hashmap, and Skip
//! list.
//!
//! Each structure is a real implementation of its algorithm, instrumented
//! with [`OpStats`] counters (nodes visited, key comparisons, bytes moved)
//! so the server model can derive per-request service times from work
//! actually done, rather than from a fixed constant. Crash consistency is
//! provided one level up by [`crate::PersistentKv`] (WAL + checkpoint).
//!
//! The hash map and skip list additionally exist as *detectably
//! recoverable* PM-native conversions ([`DetectableHashMap`],
//! [`DetectableSkipList`]) built from the [`crate::ploc`] primitives:
//! every mutation carries an `op_seq`, persists its memento before the
//! structure changes, and replays exactly-once after a crash — the
//! structures concurrent server apply leans on.

mod btree;
mod crit_bit;
mod dhashmap;
mod dskiplist;
mod hashmap;
mod rbtree;
mod skiplist;

pub use btree::BTreeKv;
pub use crit_bit::CritBitKv;
pub use dhashmap::DetectableHashMap;
pub use dskiplist::DetectableSkipList;
pub use hashmap::HashMapKv;
pub use rbtree::RbTreeKv;
pub use skiplist::SkipListKv;

/// Work counters accumulated by a KV structure since the last
/// [`KvStore::take_stats`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Tree/list/bucket nodes touched.
    pub nodes_visited: u64,
    /// Key comparisons performed.
    pub key_comparisons: u64,
    /// Key/value bytes copied.
    pub bytes_moved: u64,
}

impl OpStats {
    /// Component-wise sum.
    pub fn merge(self, other: OpStats) -> OpStats {
        OpStats {
            nodes_visited: self.nodes_visited + other.nodes_visited,
            key_comparisons: self.key_comparisons + other.key_comparisons,
            bytes_moved: self.bytes_moved + other.bytes_moved,
        }
    }
}

/// Common interface of the five index structures.
///
/// Methods take `&mut self` even for reads because every operation updates
/// the instrumentation counters.
pub trait KvStore: std::fmt::Debug {
    /// The structure's name as used in the paper's figures (e.g. "btree").
    fn name(&self) -> &'static str;

    /// Looks up `key`, returning a copy of the value.
    fn get(&mut self, key: &[u8]) -> Option<Vec<u8>>;

    /// Inserts or replaces `key`, returning the previous value if any.
    fn insert(&mut self, key: &[u8], value: &[u8]) -> Option<Vec<u8>>;

    /// Removes `key`, returning its value if present.
    fn remove(&mut self, key: &[u8]) -> Option<Vec<u8>>;

    /// Number of keys stored.
    fn len(&self) -> usize;

    /// True if no keys are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns and resets the work counters.
    fn take_stats(&mut self) -> OpStats;

    /// Visits every `(key, value)` pair (order unspecified); used by
    /// checkpointing.
    fn for_each(&self, f: &mut dyn FnMut(&[u8], &[u8]));
}

/// Constructs a fresh store of each kind; used by generic tests, the
/// workloads crate and the benches.
pub fn all_stores(seed: u64) -> Vec<Box<dyn KvStore>> {
    vec![
        Box::new(BTreeKv::new()),
        Box::new(CritBitKv::new()),
        Box::new(RbTreeKv::new()),
        Box::new(HashMapKv::new()),
        Box::new(SkipListKv::new(seed)),
    ]
}

/// Constructs a store by its paper name (`btree`, `ctree`, `rbtree`,
/// `hashmap`, `skiplist`).
///
/// # Panics
///
/// Panics on an unknown name.
pub fn store_by_name(name: &str, seed: u64) -> Box<dyn KvStore> {
    match name {
        "btree" => Box::new(BTreeKv::new()),
        "ctree" => Box::new(CritBitKv::new()),
        "rbtree" => Box::new(RbTreeKv::new()),
        "hashmap" => Box::new(HashMapKv::new()),
        "skiplist" => Box::new(SkipListKv::new(seed)),
        other => panic!("unknown store kind: {other}"),
    }
}

#[cfg(test)]
mod conformance {
    //! Differential tests: every structure must behave exactly like
    //! `std::collections::BTreeMap` over arbitrary operation sequences.

    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    #[derive(Debug, Clone)]
    enum Op {
        Insert(Vec<u8>, Vec<u8>),
        Remove(Vec<u8>),
        Get(Vec<u8>),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        let key = prop::collection::vec(0u8..8, 0..5); // small space -> collisions
        let val = prop::collection::vec(any::<u8>(), 0..20);
        prop_oneof![
            (key.clone(), val).prop_map(|(k, v)| Op::Insert(k, v)),
            key.clone().prop_map(Op::Remove),
            key.prop_map(Op::Get),
        ]
    }

    fn check_against_model(store: &mut dyn KvStore, ops: &[Op]) {
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let expect = model.insert(k.clone(), v.clone());
                    assert_eq!(
                        store.insert(k, v),
                        expect,
                        "insert {k:?} on {}",
                        store.name()
                    );
                }
                Op::Remove(k) => {
                    let expect = model.remove(k);
                    assert_eq!(store.remove(k), expect, "remove {k:?} on {}", store.name());
                }
                Op::Get(k) => {
                    let expect = model.get(k).cloned();
                    assert_eq!(store.get(k), expect, "get {k:?} on {}", store.name());
                }
            }
            assert_eq!(store.len(), model.len(), "len mismatch on {}", store.name());
        }
        // for_each visits exactly the model's pairs.
        let mut seen: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        store.for_each(&mut |k, v| {
            assert!(
                seen.insert(k.to_vec(), v.to_vec()).is_none(),
                "duplicate key"
            );
        });
        assert_eq!(seen, model, "for_each mismatch on {}", store.name());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn all_structures_match_btreemap(ops in prop::collection::vec(op_strategy(), 0..200)) {
            for mut store in all_stores(7) {
                check_against_model(store.as_mut(), &ops);
            }
        }
    }

    #[test]
    fn stats_accumulate_and_reset() {
        for mut store in all_stores(1) {
            store.insert(b"key", b"value");
            store.get(b"key");
            let s = store.take_stats();
            assert!(s.nodes_visited > 0 || s.bytes_moved > 0, "{}", store.name());
            let s2 = store.take_stats();
            assert_eq!(s2, OpStats::default(), "{}", store.name());
        }
    }

    #[test]
    fn store_by_name_round_trips() {
        for name in ["btree", "ctree", "rbtree", "hashmap", "skiplist"] {
            let store = store_by_name(name, 3);
            assert_eq!(store.name(), name);
        }
    }

    #[test]
    #[should_panic(expected = "unknown store kind")]
    fn unknown_store_panics() {
        let _ = store_by_name("splay", 0);
    }

    #[test]
    fn large_sequential_and_reverse_workload() {
        for mut store in all_stores(5) {
            for i in 0..1000u32 {
                store.insert(&i.to_be_bytes(), &i.to_le_bytes());
            }
            assert_eq!(store.len(), 1000);
            for i in (0..1000u32).rev() {
                assert_eq!(store.get(&i.to_be_bytes()), Some(i.to_le_bytes().to_vec()));
            }
            for i in (0..1000u32).step_by(2) {
                assert!(store.remove(&i.to_be_bytes()).is_some());
            }
            assert_eq!(store.len(), 500, "{}", store.name());
            for i in 0..1000u32 {
                let present = store.get(&i.to_be_bytes()).is_some();
                assert_eq!(present, i % 2 == 1, "{} key {i}", store.name());
            }
        }
    }

    #[test]
    fn empty_key_and_empty_value_are_legal() {
        for mut store in all_stores(9) {
            assert_eq!(store.insert(b"", b""), None);
            assert_eq!(store.get(b""), Some(vec![]));
            assert_eq!(store.insert(b"", b"x"), Some(vec![]));
            assert_eq!(store.remove(b""), Some(b"x".to_vec()));
            assert!(store.is_empty(), "{}", store.name());
        }
    }
}
