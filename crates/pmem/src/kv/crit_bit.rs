//! A crit-bit tree (PMDK's `ctree` workload).
//!
//! Internal nodes hold the position of the most significant bit at which
//! their two subtrees differ; lookups inspect one bit per internal node.
//! Keys are stored internally with an 8-byte big-endian length prefix,
//! which guarantees any two distinct keys differ at a byte position inside
//! both encoded keys (no out-of-range handling, no prefix ambiguity).

use super::{KvStore, OpStats};

const NIL: usize = usize::MAX;

/// The direction bit of `ikey` at `(byte, mask)`; positions beyond the
/// key's length read as zero (the standard crit-bit convention — internal
/// nodes may test positions past a shorter lookup key).
fn bit_at(ikey: &[u8], byte: usize, mask: u8) -> usize {
    match ikey.get(byte) {
        Some(b) => usize::from(b & mask != 0),
        None => 0,
    }
}

fn encode(key: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(8 + key.len());
    v.extend_from_slice(&(key.len() as u64).to_be_bytes());
    v.extend_from_slice(key);
    v
}

#[derive(Debug)]
enum CbNode {
    Internal {
        byte: usize,
        mask: u8, // exactly one bit set
        child: [usize; 2],
    },
    Leaf {
        ikey: Vec<u8>,
        value: Vec<u8>,
    },
    Free,
}

/// A crit-bit tree over byte-string keys.
#[derive(Debug, Default)]
pub struct CritBitKv {
    nodes: Vec<CbNode>,
    free: Vec<usize>,
    root: usize,
    len: usize,
    stats: OpStats,
}

impl CritBitKv {
    /// Creates an empty tree.
    pub fn new() -> CritBitKv {
        CritBitKv {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
            len: 0,
            stats: OpStats::default(),
        }
    }

    fn alloc(&mut self, node: CbNode) -> usize {
        if let Some(i) = self.free.pop() {
            self.nodes[i] = node;
            i
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    fn release(&mut self, idx: usize) {
        self.nodes[idx] = CbNode::Free;
        self.free.push(idx);
    }

    /// Walks to the leaf a lookup for `ikey` would reach.
    fn best_leaf(&mut self, ikey: &[u8]) -> usize {
        let mut cur = self.root;
        loop {
            match &self.nodes[cur] {
                CbNode::Internal { byte, mask, child } => {
                    self.stats.nodes_visited += 1;
                    cur = child[bit_at(ikey, *byte, *mask)];
                }
                CbNode::Leaf { .. } => return cur,
                CbNode::Free => unreachable!("walked into a freed node"),
            }
        }
    }

    /// First differing (byte index, isolated highest differing bit), or
    /// `None` if the encoded keys are equal.
    fn crit_pos(a: &[u8], b: &[u8]) -> Option<(usize, u8)> {
        for i in 0..a.len().min(b.len()) {
            let d = a[i] ^ b[i];
            if d != 0 {
                let bit = 7 - d.leading_zeros() as u8 % 8;
                return Some((i, 1 << bit));
            }
        }
        None
    }

    /// True if crit position `(b1, m1)` orders before `(b2, m2)`: smaller
    /// byte first, then the more significant bit.
    fn earlier(b1: usize, m1: u8, b2: usize, m2: u8) -> bool {
        b1 < b2 || (b1 == b2 && m1 > m2)
    }

    #[cfg(test)]
    fn validate(&self) {
        fn walk(t: &CritBitKv, idx: usize, count: &mut usize) {
            match &t.nodes[idx] {
                CbNode::Internal { byte, mask, child } => {
                    for (dir, &c) in child.iter().enumerate() {
                        // Every leaf under child[dir] must have bit value
                        // `dir` at (byte, mask).
                        fn check_bit(t: &CritBitKv, idx: usize, byte: usize, mask: u8, dir: usize) {
                            match &t.nodes[idx] {
                                CbNode::Internal { child, .. } => {
                                    check_bit(t, child[0], byte, mask, dir);
                                    check_bit(t, child[1], byte, mask, dir);
                                }
                                CbNode::Leaf { ikey, .. } => {
                                    assert_eq!(bit_at(ikey, byte, mask), dir, "leaf on wrong side");
                                }
                                CbNode::Free => panic!("free node reachable"),
                            }
                        }
                        check_bit(t, c, *byte, *mask, dir);
                        walk(t, c, count);
                    }
                }
                CbNode::Leaf { .. } => *count += 1,
                CbNode::Free => panic!("free node reachable"),
            }
        }
        if self.root != NIL {
            let mut count = 0;
            walk(self, self.root, &mut count);
            assert_eq!(count, self.len);
        } else {
            assert_eq!(self.len, 0);
        }
    }
}

impl KvStore for CritBitKv {
    fn name(&self) -> &'static str {
        "ctree"
    }

    fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        if self.root == NIL {
            return None;
        }
        let ikey = encode(key);
        let leaf = self.best_leaf(&ikey);
        self.stats.key_comparisons += 1;
        match &self.nodes[leaf] {
            CbNode::Leaf { ikey: lk, value } if *lk == ikey => {
                self.stats.bytes_moved += value.len() as u64;
                Some(value.clone())
            }
            _ => None,
        }
    }

    fn insert(&mut self, key: &[u8], value: &[u8]) -> Option<Vec<u8>> {
        let ikey = encode(key);
        self.stats.bytes_moved += (ikey.len() + value.len()) as u64;
        if self.root == NIL {
            self.root = self.alloc(CbNode::Leaf {
                ikey,
                value: value.to_vec(),
            });
            self.len = 1;
            return None;
        }
        let best = self.best_leaf(&ikey);
        let best_ikey = match &self.nodes[best] {
            CbNode::Leaf { ikey, .. } => ikey.clone(),
            _ => unreachable!("best_leaf returned non-leaf"),
        };
        self.stats.key_comparisons += 1;
        let Some((byte, mask)) = Self::crit_pos(&ikey, &best_ikey) else {
            // Same key: replace value.
            if let CbNode::Leaf { value: v, .. } = &mut self.nodes[best] {
                return Some(std::mem::replace(v, value.to_vec()));
            }
            unreachable!()
        };
        let dir = bit_at(&ikey, byte, mask);
        let new_leaf = self.alloc(CbNode::Leaf {
            ikey: ikey.clone(),
            value: value.to_vec(),
        });
        // Descend again to find the insertion point: the first node whose
        // crit position orders at-or-after (byte, mask).
        let mut cur = self.root;
        let mut parent: Option<(usize, usize)> = None; // (node, dir taken)
        loop {
            let stop = match &self.nodes[cur] {
                CbNode::Internal {
                    byte: nb, mask: nm, ..
                } => !Self::earlier(*nb, *nm, byte, mask),
                CbNode::Leaf { .. } => true,
                CbNode::Free => unreachable!(),
            };
            if stop {
                break;
            }
            if let CbNode::Internal {
                byte: nb,
                mask: nm,
                child,
            } = &self.nodes[cur]
            {
                self.stats.nodes_visited += 1;
                let d = bit_at(&ikey, *nb, *nm);
                parent = Some((cur, d));
                cur = child[d];
            }
        }
        let mut child = [NIL; 2];
        child[dir] = new_leaf;
        child[1 - dir] = cur;
        let internal = self.alloc(CbNode::Internal { byte, mask, child });
        match parent {
            Some((p, d)) => {
                if let CbNode::Internal { child, .. } = &mut self.nodes[p] {
                    child[d] = internal;
                }
            }
            None => self.root = internal,
        }
        self.len += 1;
        None
    }

    fn remove(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        if self.root == NIL {
            return None;
        }
        let ikey = encode(key);
        // Walk with parent/grandparent tracking.
        let mut grand: Option<(usize, usize)> = None;
        let mut parent: Option<(usize, usize)> = None;
        let mut cur = self.root;
        loop {
            match &self.nodes[cur] {
                CbNode::Internal { byte, mask, child } => {
                    self.stats.nodes_visited += 1;
                    let d = bit_at(&ikey, *byte, *mask);
                    grand = parent;
                    parent = Some((cur, d));
                    cur = child[d];
                }
                CbNode::Leaf { ikey: lk, .. } => {
                    self.stats.key_comparisons += 1;
                    if *lk != ikey {
                        return None;
                    }
                    break;
                }
                CbNode::Free => unreachable!(),
            }
        }
        let value = match std::mem::replace(&mut self.nodes[cur], CbNode::Free) {
            CbNode::Leaf { value, .. } => value,
            _ => unreachable!(),
        };
        self.free.push(cur);
        self.stats.bytes_moved += value.len() as u64;
        match parent {
            None => self.root = NIL,
            Some((p, d)) => {
                let sibling = match &self.nodes[p] {
                    CbNode::Internal { child, .. } => child[1 - d],
                    _ => unreachable!(),
                };
                self.release(p);
                match grand {
                    None => self.root = sibling,
                    Some((g, gd)) => {
                        if let CbNode::Internal { child, .. } = &mut self.nodes[g] {
                            child[gd] = sibling;
                        }
                    }
                }
            }
        }
        self.len -= 1;
        Some(value)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn take_stats(&mut self) -> OpStats {
        std::mem::take(&mut self.stats)
    }

    fn for_each(&self, f: &mut dyn FnMut(&[u8], &[u8])) {
        fn walk(t: &CritBitKv, idx: usize, f: &mut dyn FnMut(&[u8], &[u8])) {
            match &t.nodes[idx] {
                CbNode::Internal { child, .. } => {
                    walk(t, child[0], f);
                    walk(t, child[1], f);
                }
                CbNode::Leaf { ikey, value } => f(&ikey[8..], value),
                CbNode::Free => panic!("free node reachable"),
            }
        }
        if self.root != NIL {
            walk(self, self.root, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crit_pos_finds_most_significant_differing_bit() {
        assert_eq!(
            CritBitKv::crit_pos(b"abc", b"abd"),
            Some((2, 0b0000_0111 & !0b11))
        );
        // 'c' = 0x63, 'd' = 0x64 -> xor 0x07 -> highest bit 0x04.
        assert_eq!(CritBitKv::crit_pos(b"abc", b"abd"), Some((2, 0x04)));
        assert_eq!(CritBitKv::crit_pos(b"same", b"same"), None);
        assert_eq!(CritBitKv::crit_pos(&[0x00], &[0x80]), Some((0, 0x80)));
    }

    #[test]
    fn length_prefix_disambiguates_prefix_keys() {
        let mut t = CritBitKv::new();
        t.insert(b"a", b"1");
        t.insert(b"ab", b"2");
        t.insert(b"abc", b"3");
        t.insert(b"", b"0");
        assert_eq!(t.get(b"a"), Some(b"1".to_vec()));
        assert_eq!(t.get(b"ab"), Some(b"2".to_vec()));
        assert_eq!(t.get(b"abc"), Some(b"3".to_vec()));
        assert_eq!(t.get(b""), Some(b"0".to_vec()));
        t.validate();
    }

    #[test]
    fn structure_invariants_hold_under_churn() {
        let mut t = CritBitKv::new();
        for i in 0..300u32 {
            t.insert(&(i * 7919).to_be_bytes(), &i.to_le_bytes());
            if i % 3 == 0 {
                t.remove(&((i / 2) * 7919).to_be_bytes());
            }
            t.validate();
        }
    }

    #[test]
    fn removing_root_leaf_empties_tree() {
        let mut t = CritBitKv::new();
        t.insert(b"only", b"x");
        assert_eq!(t.remove(b"only"), Some(b"x".to_vec()));
        assert_eq!(t.root, NIL);
        assert!(t.is_empty());
        t.validate();
    }

    #[test]
    fn freed_nodes_are_reused() {
        let mut t = CritBitKv::new();
        for i in 0..100u8 {
            t.insert(&[i], &[i]);
        }
        let peak = t.nodes.len();
        for i in 0..100u8 {
            t.remove(&[i]);
        }
        for i in 0..100u8 {
            t.insert(&[i], &[i]);
        }
        assert_eq!(t.nodes.len(), peak);
        t.validate();
    }
}
