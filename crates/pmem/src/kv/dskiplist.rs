//! Detectably recoverable skiplist in persistent memory.
//!
//! The PM-native conversion of [`SkipListKv`](super::SkipListKv). The
//! durable truth is the sorted level-0 linked list: every splice into it
//! is one [`DetectableCas`] on the predecessor's `next0` word (or the
//! head word in the root block), preceded by a [`Checkpoint`] of the
//! op's decision — the same exactly-once protocol as the detectable hash
//! map. The express lanes above level 0 are a volatile index (the
//! classic NV-skiplist split): towers carry no durability obligations,
//! are rebuilt deterministically on [`DetectableSkipList::open`] from
//! heights stored in the nodes, and therefore add **zero** persist
//! points to a mutation, which keeps the crash-point sweep surface
//! identical for every key.
//!
//! Durable layout:
//! - root block: `[head0][checkpoint][cas]` (24, padded to 32)
//! - node: `[next0][height][klen: u32][vlen: u32][key][value]` (24 + k + v)

use crate::arena::PmPtr;
use crate::ploc::{Checkpoint, Crashed, DetectableCas, PlocHeap};

const MAX_LEVEL: usize = 16;
const NIL: usize = usize::MAX;
const NODE_HDR: usize = 24;

/// Deterministic height generator (splitmix64), matching the volatile
/// skiplist's 1/4 tower distribution.
#[derive(Debug)]
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn height(&mut self) -> usize {
        let mut h = 1;
        while h < MAX_LEVEL && self.next() & 3 == 0 {
            h += 1;
        }
        h
    }
}

/// Volatile tower node: key copy for comparisons, the PM node it fronts,
/// and per-level successors into the `towers` arena.
#[derive(Debug)]
struct Tower {
    key: Vec<u8>,
    pm: PmPtr,
    next: Vec<usize>,
}

/// A sorted map whose mutations replay exactly-once after a crash.
#[derive(Debug)]
pub struct DetectableSkipList {
    block: PmPtr,
    ck: Checkpoint<PmPtr>,
    cas: DetectableCas,
    len: usize,
    deferred_free: Option<PmPtr>,
    towers: Vec<Tower>,
    free: Vec<usize>,
    head: [usize; MAX_LEVEL],
    level: usize,
    rng: SplitMix,
}

impl DetectableSkipList {
    /// Builds an empty list and installs it as the heap's root object.
    /// `seed` drives tower heights for *new* inserts (recovery re-reads
    /// heights from the nodes, so the seed never affects durable state).
    pub fn create(heap: &mut PlocHeap, seed: u64) -> Result<DetectableSkipList, Crashed> {
        let ck: Checkpoint<PmPtr> = Checkpoint::alloc(heap).expect("arena exhausted");
        let cas = DetectableCas::alloc(heap).expect("arena exhausted");
        let block = heap.arena().alloc(32).expect("arena exhausted");
        let arena = heap.arena();
        arena.write_u64(block, 0);
        arena.write_u64(PmPtr(block.0 + 8), ck.ptr().0);
        arena.write_u64(PmPtr(block.0 + 16), cas.ptr().0);
        arena.write_u64(PmPtr(block.0 + 24), 0);
        heap.persist(block, 32)?;
        heap.persist_root(block.0)?;
        Ok(DetectableSkipList {
            block,
            ck,
            cas,
            len: 0,
            deferred_free: None,
            towers: Vec::new(),
            free: Vec::new(),
            head: [NIL; MAX_LEVEL],
            level: 1,
            rng: SplitMix(seed ^ 0xABCD_EF01),
        })
    }

    /// Recovers the list from the heap's root: rolls any pending CAS
    /// forward, then rebuilds the volatile towers (and length) by walking
    /// the durable level-0 chain in key order.
    pub fn open(heap: &mut PlocHeap, seed: u64) -> Result<DetectableSkipList, Crashed> {
        let block = PmPtr(heap.root());
        assert!(!block.is_null(), "no skiplist at the heap root");
        let arena = heap.arena();
        let ck = Checkpoint::from_ptr(PmPtr(arena.read_u64(PmPtr(block.0 + 8))));
        let cas = DetectableCas::from_ptr(PmPtr(arena.read_u64(PmPtr(block.0 + 16))));
        cas.recover(heap)?;
        let mut list = DetectableSkipList {
            block,
            ck,
            cas,
            len: 0,
            deferred_free: None,
            towers: Vec::new(),
            free: Vec::new(),
            head: [NIL; MAX_LEVEL],
            level: 1,
            rng: SplitMix(seed ^ 0xABCD_EF01),
        };
        // Walk level 0 (already sorted): append towers left-to-right,
        // tracking the rightmost tower per level to relink lanes without
        // re-searching.
        let mut rightmost = [NIL; MAX_LEVEL];
        let mut cur = heap.arena().read_u64(block);
        while cur != 0 {
            let pm = PmPtr(cur);
            let height = (heap.arena().read_u64(PmPtr(pm.0 + 8)) as usize).clamp(1, MAX_LEVEL);
            let key = Self::node_key(heap, pm);
            let idx = list.towers.len();
            list.towers.push(Tower {
                key,
                pm,
                next: vec![NIL; height],
            });
            for (lvl, right) in rightmost.iter_mut().enumerate().take(height) {
                if *right == NIL {
                    list.head[lvl] = idx;
                } else {
                    list.towers[*right].next[lvl] = idx;
                }
                *right = idx;
            }
            list.level = list.level.max(height);
            list.len += 1;
            cur = heap.arena().read_u64(pm);
        }
        Ok(list)
    }

    fn node_key(heap: &mut PlocHeap, node: PmPtr) -> Vec<u8> {
        let klen = heap.arena().read_u64(PmPtr(node.0 + 16)) as u32 as usize;
        heap.arena()
            .read(PmPtr(node.0 + NODE_HDR as u64), klen)
            .to_vec()
    }

    fn node_value(heap: &mut PlocHeap, node: PmPtr) -> Vec<u8> {
        let meta = heap.arena().read_u64(PmPtr(node.0 + 16));
        let klen = meta as u32 as usize;
        let vlen = (meta >> 32) as u32 as usize;
        heap.arena()
            .read(PmPtr(node.0 + (NODE_HDR + klen) as u64), vlen)
            .to_vec()
    }

    fn node_len(heap: &mut PlocHeap, node: PmPtr) -> usize {
        let meta = heap.arena().read_u64(PmPtr(node.0 + 16));
        NODE_HDR + meta as u32 as usize + ((meta >> 32) as u32 as usize)
    }

    /// Finds per-level predecessors of `key` in the volatile index.
    /// Returns `(update, candidate)` where `update[l]` is the rightmost
    /// tower `< key` at level `l` (`NIL` = head) and `candidate` is the
    /// level-0 successor of `update[0]`.
    fn find(&self, key: &[u8]) -> ([usize; MAX_LEVEL], usize) {
        let mut update = [NIL; MAX_LEVEL];
        let mut pred = NIL;
        for lvl in (0..self.level).rev() {
            let mut cur = if pred == NIL {
                self.head[lvl]
            } else {
                self.towers[pred].next[lvl]
            };
            while cur != NIL && self.towers[cur].key.as_slice() < key {
                pred = cur;
                cur = self.towers[cur].next[lvl];
            }
            update[lvl] = pred;
        }
        let candidate = if pred == NIL {
            self.head[0]
        } else {
            self.towers[pred].next[0]
        };
        (update, candidate)
    }

    /// The PM word that points at `update[0]`'s level-0 successor: the
    /// predecessor node's `next0` field, or the head word in the root
    /// block — always the detectable-CAS target of a splice here.
    fn slot_of(&self, pred0: usize) -> PmPtr {
        if pred0 == NIL {
            self.block
        } else {
            self.towers[pred0].pm
        }
    }

    fn write_node(
        heap: &mut PlocHeap,
        next0: u64,
        height: usize,
        key: &[u8],
        value: &[u8],
    ) -> PmPtr {
        let len = NODE_HDR + key.len() + value.len();
        let node = heap.arena().alloc(len).expect("arena exhausted");
        let arena = heap.arena();
        arena.write_u64(node, next0);
        arena.write_u64(PmPtr(node.0 + 8), height as u64);
        arena.write_u64(
            PmPtr(node.0 + 16),
            key.len() as u64 | ((value.len() as u64) << 32),
        );
        arena.write(PmPtr(node.0 + NODE_HDR as u64), key);
        arena.write(PmPtr(node.0 + (NODE_HDR + key.len()) as u64), value);
        node
    }

    fn drain_deferred(&mut self, heap: &mut PlocHeap) {
        if let Some(node) = self.deferred_free.take() {
            let len = Self::node_len(heap, node);
            heap.arena().free(node, len);
        }
    }

    /// Inserts or replaces `key`. Returns `true` when a previous value
    /// was displaced. Re-invoking with an applied `op_seq` returns the
    /// recorded outcome without mutating the list.
    pub fn insert(
        &mut self,
        heap: &mut PlocHeap,
        op_seq: u64,
        key: &[u8],
        value: &[u8],
    ) -> Result<bool, Crashed> {
        if let Some(displaced) = self.ck.saved(heap, op_seq) {
            if self.cas.saved(heap, op_seq).is_some() {
                return Ok(!displaced.is_null());
            }
        }
        self.drain_deferred(heap);
        let (update, candidate) = self.find(key);
        let slot = self.slot_of(update[0]);
        let hit = candidate != NIL && self.towers[candidate].key == key;
        if hit {
            // Splice-replace: the tower stays, only the PM node swaps.
            let old = self.towers[candidate].pm;
            let next0 = heap.arena().read_u64(old);
            let height = self.towers[candidate].next.len();
            let node = Self::write_node(heap, next0, height, key, value);
            heap.persist(node, NODE_HDR + key.len() + value.len())?;
            self.ck.record(heap, op_seq, old)?;
            let out = self.cas.cas(heap, op_seq, slot, old.0, node.0)?;
            debug_assert!(out.swapped, "single-owner CAS cannot fail");
            self.towers[candidate].pm = node;
            self.deferred_free = Some(old);
            Ok(true)
        } else {
            let next0 = heap.arena().read_u64(slot);
            let height = self.rng.height();
            let node = Self::write_node(heap, next0, height, key, value);
            heap.persist(node, NODE_HDR + key.len() + value.len())?;
            self.ck.record(heap, op_seq, PmPtr::NULL)?;
            let out = self.cas.cas(heap, op_seq, slot, next0, node.0)?;
            debug_assert!(out.swapped, "single-owner CAS cannot fail");
            self.link_tower(key, node, height, &update);
            self.len += 1;
            Ok(false)
        }
    }

    /// Links a freshly spliced node into the volatile lanes.
    fn link_tower(&mut self, key: &[u8], pm: PmPtr, height: usize, update: &[usize; MAX_LEVEL]) {
        let idx = if let Some(idx) = self.free.pop() {
            self.towers[idx] = Tower {
                key: key.to_vec(),
                pm,
                next: vec![NIL; height],
            };
            idx
        } else {
            self.towers.push(Tower {
                key: key.to_vec(),
                pm,
                next: vec![NIL; height],
            });
            self.towers.len() - 1
        };
        self.level = self.level.max(height);
        for (lvl, &pred) in update.iter().enumerate().take(height) {
            if pred == NIL {
                let succ = self.head[lvl];
                self.towers[idx].next[lvl] = succ;
                self.head[lvl] = idx;
            } else {
                let succ = self.towers[pred].next[lvl];
                self.towers[idx].next[lvl] = succ;
                self.towers[pred].next[lvl] = idx;
            }
        }
    }

    /// Removes `key`. Returns `true` when an entry was removed.
    pub fn remove(
        &mut self,
        heap: &mut PlocHeap,
        op_seq: u64,
        key: &[u8],
    ) -> Result<bool, Crashed> {
        if let Some(displaced) = self.ck.saved(heap, op_seq) {
            if displaced.is_null() {
                return Ok(false);
            }
            if self.cas.saved(heap, op_seq).is_some() {
                return Ok(true);
            }
        }
        self.drain_deferred(heap);
        let (update, candidate) = self.find(key);
        let hit = candidate != NIL && self.towers[candidate].key == key;
        if !hit {
            self.ck.record(heap, op_seq, PmPtr::NULL)?;
            return Ok(false);
        }
        let node = self.towers[candidate].pm;
        self.ck.record(heap, op_seq, node)?;
        let next0 = heap.arena().read_u64(node);
        let slot = self.slot_of(update[0]);
        let out = self.cas.cas(heap, op_seq, slot, node.0, next0)?;
        debug_assert!(out.swapped, "single-owner CAS cannot fail");
        // Unlink the tower from every lane it occupies.
        let height = self.towers[candidate].next.len();
        for (lvl, &pred) in update.iter().enumerate().take(height) {
            let succ = self.towers[candidate].next[lvl];
            if pred == NIL {
                debug_assert_eq!(self.head[lvl], candidate);
                self.head[lvl] = succ;
            } else {
                debug_assert_eq!(self.towers[pred].next[lvl], candidate);
                self.towers[pred].next[lvl] = succ;
            }
        }
        self.free.push(candidate);
        self.deferred_free = Some(node);
        self.len -= 1;
        Ok(true)
    }

    /// Looks up `key`, copying the value out of PM.
    pub fn get(&self, heap: &mut PlocHeap, key: &[u8]) -> Option<Vec<u8>> {
        let (_, candidate) = self.find(key);
        (candidate != NIL && self.towers[candidate].key == key)
            .then(|| Self::node_value(heap, self.towers[candidate].pm))
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Content digest: FNV-1a over `(key, value)` pairs in key order via
    /// the durable level-0 chain, folded with the length — tower shapes
    /// never participate.
    pub fn digest(&self, heap: &mut PlocHeap) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let fold = |h: &mut u64, bytes: &[u8]| {
            for &b in bytes {
                *h ^= b as u64;
                *h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        let mut cur = heap.arena().read_u64(self.block);
        while cur != 0 {
            let node = PmPtr(cur);
            let key = Self::node_key(heap, node);
            let value = Self::node_value(heap, node);
            fold(&mut h, &(key.len() as u32).to_le_bytes());
            fold(&mut h, &key);
            fold(&mut h, &(value.len() as u32).to_le_bytes());
            fold(&mut h, &value);
            cur = heap.arena().read_u64(node);
        }
        fold(&mut h, &(self.len as u64).to_le_bytes());
        h
    }

    /// Checks the volatile lanes against the durable chain (test hook).
    #[cfg(test)]
    fn validate(&self, heap: &mut PlocHeap) {
        let mut cur = heap.arena().read_u64(self.block);
        let mut idx = self.head[0];
        let mut prev_key: Option<Vec<u8>> = None;
        let mut n = 0;
        while cur != 0 {
            assert_ne!(idx, NIL, "tower chain shorter than PM chain");
            assert_eq!(self.towers[idx].pm.0, cur, "tower fronts wrong node");
            let key = Self::node_key(heap, PmPtr(cur));
            if let Some(p) = &prev_key {
                assert!(p.as_slice() < key.as_slice(), "level 0 out of order");
            }
            prev_key = Some(key);
            n += 1;
            cur = heap.arena().read_u64(PmPtr(cur));
            idx = self.towers[idx].next[0];
        }
        assert_eq!(idx, NIL, "tower chain longer than PM chain");
        assert_eq!(n, self.len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn sorted_insert_get_remove() {
        let mut heap = PlocHeap::new(1 << 20);
        let mut list = DetectableSkipList::create(&mut heap, 7).unwrap();
        assert!(!list.insert(&mut heap, 1, b"m", b"1").unwrap());
        assert!(!list.insert(&mut heap, 2, b"a", b"2").unwrap());
        assert!(!list.insert(&mut heap, 3, b"z", b"3").unwrap());
        assert!(list.insert(&mut heap, 4, b"m", b"4").unwrap());
        list.validate(&mut heap);
        assert_eq!(list.get(&mut heap, b"m"), Some(b"4".to_vec()));
        assert_eq!(list.len(), 3);
        assert!(list.remove(&mut heap, 5, b"a").unwrap());
        assert!(!list.remove(&mut heap, 6, b"a").unwrap());
        list.validate(&mut heap);
        assert_eq!(list.len(), 2);
    }

    #[test]
    fn replay_of_the_latest_op_does_not_mutate() {
        // The memento detects the *latest* op per structure — the only one
        // that can be mid-flight at a crash; older resends are deduped by
        // the applied-seq table before they reach the structure.
        let mut heap = PlocHeap::new(1 << 20);
        let mut list = DetectableSkipList::create(&mut heap, 7).unwrap();
        list.insert(&mut heap, 1, b"k", b"v").unwrap();
        let before = list.digest(&mut heap);
        assert!(!list.insert(&mut heap, 1, b"k", b"v").unwrap());
        assert_eq!(list.digest(&mut heap), before);
        list.remove(&mut heap, 2, b"missing").unwrap();
        let before = list.digest(&mut heap);
        assert!(!list.remove(&mut heap, 2, b"missing").unwrap());
        assert_eq!(list.digest(&mut heap), before);
        list.validate(&mut heap);
    }

    #[test]
    fn open_rebuilds_towers_from_the_durable_chain() {
        let mut heap = PlocHeap::new(1 << 22);
        let mut list = DetectableSkipList::create(&mut heap, 42).unwrap();
        let mut model = BTreeMap::new();
        for i in 0u64..150 {
            let k = format!("key-{:03}", (i * 67) % 151);
            let v = format!("val-{i}");
            list.insert(&mut heap, i + 1, k.as_bytes(), v.as_bytes())
                .unwrap();
            model.insert(k, v);
        }
        for i in 0u64..30 {
            let k = format!("key-{:03}", (i * 11) % 151);
            if list.remove(&mut heap, 1000 + i, k.as_bytes()).unwrap() {
                model.remove(&k);
            }
        }
        list.validate(&mut heap);
        let d = list.digest(&mut heap);
        heap.crash_losing_all();
        let reopened = DetectableSkipList::open(&mut heap, 42).unwrap();
        reopened.validate(&mut heap);
        assert_eq!(reopened.len(), model.len());
        assert_eq!(reopened.digest(&mut heap), d);
        for (k, v) in &model {
            assert_eq!(
                reopened.get(&mut heap, k.as_bytes()),
                Some(v.clone().into_bytes())
            );
        }
    }
}
