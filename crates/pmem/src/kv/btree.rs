//! A B+-tree (the PMDK `btree` workload).
//!
//! Values live in the leaves; internal nodes hold separator keys. Inserts
//! split on overflow in the classic way. Deletes shrink leaves and drop
//! empty children without merging siblings — the tree stays a correct
//! search tree and one-child roots collapse, which is sufficient for the
//! simulated workloads (documented trade-off; conformance tests verify
//! behavioural equivalence with `BTreeMap`).

use super::{KvStore, OpStats};

/// Maximum entries per leaf / separators per internal node before a split.
const MAX_KEYS: usize = 16;

/// Result of a recursive insert: the replaced value (if the key existed)
/// and, when the node split, the separator plus the new right sibling.
type InsertOutcome = (Option<Vec<u8>>, Option<(Vec<u8>, Box<Node>)>);

#[derive(Debug)]
enum Node {
    Leaf {
        entries: Vec<(Vec<u8>, Vec<u8>)>,
    },
    Internal {
        keys: Vec<Vec<u8>>,
        // Boxed so split/steal operations move a fixed-size pointer
        // instead of the whole child enum (entries inline in `Leaf`).
        #[allow(clippy::vec_box)]
        children: Vec<Box<Node>>,
    },
}

/// A B+-tree over byte-string keys.
#[derive(Debug)]
pub struct BTreeKv {
    root: Box<Node>,
    len: usize,
    stats: OpStats,
}

impl Default for BTreeKv {
    fn default() -> Self {
        Self::new()
    }
}

impl BTreeKv {
    /// Creates an empty tree.
    pub fn new() -> BTreeKv {
        BTreeKv {
            root: Box::new(Node::Leaf {
                entries: Vec::new(),
            }),
            len: 0,
            stats: OpStats::default(),
        }
    }

    /// Binary search counting comparisons: first index whose key is >= `k`
    /// (for leaves) using the extractor `f`.
    fn lower_bound<T>(stats: &mut OpStats, xs: &[T], k: &[u8], f: impl Fn(&T) -> &[u8]) -> usize {
        let (mut lo, mut hi) = (0, xs.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            stats.key_comparisons += 1;
            if f(&xs[mid]) < k {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Child index covering `k` in an internal node: number of separators
    /// that are <= `k`.
    fn child_index(stats: &mut OpStats, keys: &[Vec<u8>], k: &[u8]) -> usize {
        let (mut lo, mut hi) = (0, keys.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            stats.key_comparisons += 1;
            if keys[mid].as_slice() <= k {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    fn insert_rec(stats: &mut OpStats, node: &mut Node, k: &[u8], v: &[u8]) -> InsertOutcome {
        stats.nodes_visited += 1;
        match node {
            Node::Leaf { entries } => {
                let idx = Self::lower_bound(stats, entries, k, |e| &e.0);
                if idx < entries.len() && entries[idx].0 == k {
                    stats.key_comparisons += 1;
                    let old = std::mem::replace(&mut entries[idx].1, v.to_vec());
                    return (Some(old), None);
                }
                stats.bytes_moved += (k.len() + v.len()) as u64;
                entries.insert(idx, (k.to_vec(), v.to_vec()));
                if entries.len() > MAX_KEYS {
                    let right = entries.split_off(entries.len() / 2);
                    let sep = right[0].0.clone();
                    (None, Some((sep, Box::new(Node::Leaf { entries: right }))))
                } else {
                    (None, None)
                }
            }
            Node::Internal { keys, children } => {
                let idx = Self::child_index(stats, keys, k);
                let (old, split) = Self::insert_rec(stats, &mut children[idx], k, v);
                if let Some((sep, right)) = split {
                    keys.insert(idx, sep);
                    children.insert(idx + 1, right);
                    if keys.len() > MAX_KEYS {
                        let mid = keys.len() / 2;
                        let sep_up = keys.remove(mid);
                        let right_keys = keys.split_off(mid);
                        let right_children = children.split_off(mid + 1);
                        let right = Box::new(Node::Internal {
                            keys: right_keys,
                            children: right_children,
                        });
                        return (old, Some((sep_up, right)));
                    }
                }
                (old, None)
            }
        }
    }

    /// Removes `k`; returns (old value, whether the node is now empty).
    fn remove_rec(stats: &mut OpStats, node: &mut Node, k: &[u8]) -> (Option<Vec<u8>>, bool) {
        stats.nodes_visited += 1;
        match node {
            Node::Leaf { entries } => {
                let idx = Self::lower_bound(stats, entries, k, |e| &e.0);
                if idx < entries.len() && entries[idx].0 == k {
                    stats.key_comparisons += 1;
                    let (_, v) = entries.remove(idx);
                    stats.bytes_moved += v.len() as u64;
                    (Some(v), entries.is_empty())
                } else {
                    (None, false)
                }
            }
            Node::Internal { keys, children } => {
                let idx = Self::child_index(stats, keys, k);
                let (old, child_empty) = Self::remove_rec(stats, &mut children[idx], k);
                if child_empty {
                    children.remove(idx);
                    if !keys.is_empty() {
                        // Dropping child i invalidates the separator to its
                        // left (or the first separator for child 0).
                        keys.remove(idx.saturating_sub(1));
                    }
                }
                (old, children.is_empty())
            }
        }
    }

    #[cfg(test)]
    fn validate(&self) {
        fn walk(node: &Node, lo: Option<&[u8]>, hi: Option<&[u8]>, out: &mut Vec<Vec<u8>>) {
            match node {
                Node::Leaf { entries } => {
                    for (k, _) in entries {
                        if let Some(lo) = lo {
                            assert!(k.as_slice() >= lo, "leaf key below bound");
                        }
                        if let Some(hi) = hi {
                            assert!(k.as_slice() < hi, "leaf key above bound");
                        }
                        out.push(k.clone());
                    }
                }
                Node::Internal { keys, children } => {
                    assert_eq!(children.len(), keys.len() + 1, "child/separator mismatch");
                    for w in keys.windows(2) {
                        assert!(w[0] < w[1], "separators out of order");
                    }
                    for (i, child) in children.iter().enumerate() {
                        let clo = if i == 0 {
                            lo
                        } else {
                            Some(keys[i - 1].as_slice())
                        };
                        let chi = if i == keys.len() {
                            hi
                        } else {
                            Some(keys[i].as_slice())
                        };
                        walk(child, clo, chi, out);
                    }
                }
            }
        }
        let mut keys = Vec::new();
        walk(&self.root, None, None, &mut keys);
        assert_eq!(keys.len(), self.len, "len mismatch");
        for w in keys.windows(2) {
            assert!(w[0] < w[1], "global key order violated");
        }
    }
}

impl KvStore for BTreeKv {
    fn name(&self) -> &'static str {
        "btree"
    }

    fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        let stats = &mut self.stats;
        let mut node: &Node = &self.root;
        loop {
            stats.nodes_visited += 1;
            match node {
                Node::Leaf { entries } => {
                    let idx = Self::lower_bound(stats, entries, key, |e| &e.0);
                    if idx < entries.len() && entries[idx].0 == key {
                        stats.key_comparisons += 1;
                        stats.bytes_moved += entries[idx].1.len() as u64;
                        return Some(entries[idx].1.clone());
                    }
                    return None;
                }
                Node::Internal { keys, children } => {
                    let idx = Self::child_index(stats, keys, key);
                    node = &children[idx];
                }
            }
        }
    }

    fn insert(&mut self, key: &[u8], value: &[u8]) -> Option<Vec<u8>> {
        let (old, split) = Self::insert_rec(&mut self.stats, &mut self.root, key, value);
        if let Some((sep, right)) = split {
            let left = std::mem::replace(
                &mut self.root,
                Box::new(Node::Leaf {
                    entries: Vec::new(),
                }),
            );
            *self.root = Node::Internal {
                keys: vec![sep],
                children: vec![left, right],
            };
        }
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn remove(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        let (old, _) = Self::remove_rec(&mut self.stats, &mut self.root, key);
        if old.is_some() {
            self.len -= 1;
        }
        // Collapse chains of single-child roots; restore an empty leaf root.
        loop {
            match &mut *self.root {
                Node::Internal { children, .. } if children.len() == 1 => {
                    let only = children.pop().expect("one child");
                    self.root = only;
                }
                Node::Internal { children, .. } if children.is_empty() => {
                    *self.root = Node::Leaf {
                        entries: Vec::new(),
                    };
                    break;
                }
                _ => break,
            }
        }
        old
    }

    fn len(&self) -> usize {
        self.len
    }

    fn take_stats(&mut self) -> OpStats {
        std::mem::take(&mut self.stats)
    }

    fn for_each(&self, f: &mut dyn FnMut(&[u8], &[u8])) {
        fn walk(node: &Node, f: &mut dyn FnMut(&[u8], &[u8])) {
            match node {
                Node::Leaf { entries } => {
                    for (k, v) in entries {
                        f(k, v);
                    }
                }
                Node::Internal { children, .. } => {
                    for c in children {
                        walk(c, f);
                    }
                }
            }
        }
        walk(&self.root, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn splits_preserve_structure() {
        let mut t = BTreeKv::new();
        for i in 0..500u32 {
            t.insert(&i.to_be_bytes(), &[1]);
            t.validate();
        }
        assert_eq!(t.len(), 500);
    }

    #[test]
    fn removal_collapses_root() {
        let mut t = BTreeKv::new();
        for i in 0..100u32 {
            t.insert(&i.to_be_bytes(), &[1]);
        }
        for i in 0..100u32 {
            assert!(t.remove(&i.to_be_bytes()).is_some());
            t.validate();
        }
        assert!(t.is_empty());
        assert!(matches!(&*t.root, Node::Leaf { entries } if entries.is_empty()));
    }

    #[test]
    fn iteration_is_in_key_order() {
        let mut t = BTreeKv::new();
        for i in [9u8, 1, 5, 3, 7, 0, 8, 2, 6, 4] {
            t.insert(&[i], &[i]);
        }
        let mut keys = Vec::new();
        t.for_each(&mut |k, _| keys.push(k[0]));
        assert_eq!(keys, (0..10).collect::<Vec<u8>>());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn invariants_hold_under_random_ops(
            ops in prop::collection::vec((prop::collection::vec(0u8..16, 1..4), any::<bool>()), 0..300)
        ) {
            let mut t = BTreeKv::new();
            for (key, is_insert) in ops {
                if is_insert {
                    t.insert(&key, b"v");
                } else {
                    t.remove(&key);
                }
                t.validate();
            }
        }
    }
}
