//! Detectably recoverable chained hash map in persistent memory.
//!
//! The PM-native conversion of [`HashMapKv`](super::HashMapKv): same
//! FNV-1a bucketing and ×2 growth policy, but every mutation is a
//! detectable operation built from the [`ploc`](crate::ploc) primitives:
//!
//! 1. the new node is written and persisted,
//! 2. the op's decision (the displaced node, or NULL) is recorded in the
//!    structure's [`Checkpoint`] — *before* the structure changes,
//! 3. the splice itself is a single [`DetectableCas`] on the pointer slot
//!    (bucket head word or predecessor `next` field) that reaches the
//!    node.
//!
//! Replaying an operation with the same `op_seq` after a crash is
//! exactly-once by construction: a durable checkpoint + `DONE` memento
//! short-circuits to the recorded outcome; a `PENDING` memento is rolled
//! forward by [`DetectableHashMap::open`]; anything earlier re-executes
//! against unchanged durable state (at worst leaking an unlinked node,
//! never duplicating or dropping an entry). Growth rebuilds into a fresh
//! bucket array and commits via a single atomic root swap, so a crash
//! mid-rebuild leaves the old table intact.
//!
//! Durable layout (all offsets in bytes):
//! - root block: `[bucket_array][nbuckets][checkpoint][cas]` (32)
//! - bucket array: `nbuckets` head words
//! - node: `[next][klen: u32][vlen: u32][key][value]` (16 + k + v)
//!
//! One structure owns the heap's root pointer; `len` is volatile and
//! recomputed by a chain walk on open.

use crate::arena::PmPtr;
use crate::ploc::{Checkpoint, Crashed, DetectableCas, PlocHeap};

const INITIAL_BUCKETS: u64 = 16;
const NODE_HDR: usize = 16;

fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A chained hash map whose mutations replay exactly-once after a crash.
#[derive(Debug)]
pub struct DetectableHashMap {
    block: PmPtr,
    array: PmPtr,
    nbuckets: u64,
    ck: Checkpoint<PmPtr>,
    cas: DetectableCas,
    len: usize,
    /// Node displaced by the most recent op; freed at the next op so a
    /// replay of the latest `op_seq` can still read its value.
    deferred_free: Option<PmPtr>,
}

impl DetectableHashMap {
    /// Builds an empty map and installs it as the heap's root object.
    /// Panics if the arena cannot hold the metadata.
    pub fn create(heap: &mut PlocHeap) -> Result<DetectableHashMap, Crashed> {
        let ck: Checkpoint<PmPtr> = Checkpoint::alloc(heap).expect("arena exhausted");
        let cas = DetectableCas::alloc(heap).expect("arena exhausted");
        let array = Self::alloc_buckets(heap, INITIAL_BUCKETS)?;
        let block = heap.arena().alloc(32).expect("arena exhausted");
        let arena = heap.arena();
        arena.write_u64(block, array.0);
        arena.write_u64(PmPtr(block.0 + 8), INITIAL_BUCKETS);
        arena.write_u64(PmPtr(block.0 + 16), ck.ptr().0);
        arena.write_u64(PmPtr(block.0 + 24), cas.ptr().0);
        heap.persist(block, 32)?;
        heap.persist_root(block.0)?;
        Ok(DetectableHashMap {
            block,
            array,
            nbuckets: INITIAL_BUCKETS,
            ck,
            cas,
            len: 0,
            deferred_free: None,
        })
    }

    /// Recovers the map from the heap's root: rolls any pending CAS
    /// forward, then rebuilds the volatile length by walking the chains.
    pub fn open(heap: &mut PlocHeap) -> Result<DetectableHashMap, Crashed> {
        let block = PmPtr(heap.root());
        assert!(!block.is_null(), "no hash map at the heap root");
        let arena = heap.arena();
        let array = PmPtr(arena.read_u64(block));
        let nbuckets = arena.read_u64(PmPtr(block.0 + 8));
        let ck = Checkpoint::from_ptr(PmPtr(arena.read_u64(PmPtr(block.0 + 16))));
        let cas = DetectableCas::from_ptr(PmPtr(arena.read_u64(PmPtr(block.0 + 24))));
        cas.recover(heap)?;
        let mut map = DetectableHashMap {
            block,
            array,
            nbuckets,
            ck,
            cas,
            len: 0,
            deferred_free: None,
        };
        map.len = map.walk_len(heap);
        Ok(map)
    }

    fn alloc_buckets(heap: &mut PlocHeap, n: u64) -> Result<PmPtr, Crashed> {
        let bytes = (n as usize) * 8;
        let arr = heap.arena().alloc(bytes).expect("arena exhausted");
        heap.arena().write(arr, &vec![0u8; bytes]);
        heap.persist(arr, bytes)?;
        Ok(arr)
    }

    fn bucket_slot(&self, idx: u64) -> PmPtr {
        PmPtr(self.array.0 + idx * 8)
    }

    fn node_key(heap: &mut PlocHeap, node: PmPtr) -> Vec<u8> {
        let klen = heap.arena().read_u64(PmPtr(node.0 + 8)) as u32 as usize;
        heap.arena()
            .read(PmPtr(node.0 + NODE_HDR as u64), klen)
            .to_vec()
    }

    fn node_value(heap: &mut PlocHeap, node: PmPtr) -> Vec<u8> {
        let meta = heap.arena().read_u64(PmPtr(node.0 + 8));
        let klen = meta as u32 as usize;
        let vlen = (meta >> 32) as u32 as usize;
        heap.arena()
            .read(PmPtr(node.0 + (NODE_HDR + klen) as u64), vlen)
            .to_vec()
    }

    fn node_len(heap: &mut PlocHeap, node: PmPtr) -> usize {
        let meta = heap.arena().read_u64(PmPtr(node.0 + 8));
        NODE_HDR + meta as u32 as usize + ((meta >> 32) as u32 as usize)
    }

    /// Finds `key`'s chain position: the pointer slot whose target is the
    /// matching node (`Some(node)`), or the bucket head slot when absent.
    fn search(&self, heap: &mut PlocHeap, key: &[u8]) -> (PmPtr, Option<PmPtr>) {
        let mut slot = self.bucket_slot(fnv1a(key) % self.nbuckets);
        let mut cur = heap.arena().read_u64(slot);
        while cur != 0 {
            let node = PmPtr(cur);
            if Self::node_key(heap, node) == key {
                return (slot, Some(node));
            }
            slot = node; // the node's `next` field is its first word
            cur = heap.arena().read_u64(slot);
        }
        (self.bucket_slot(fnv1a(key) % self.nbuckets), None)
    }

    fn write_node(heap: &mut PlocHeap, next: u64, key: &[u8], value: &[u8]) -> PmPtr {
        let len = NODE_HDR + key.len() + value.len();
        let node = heap.arena().alloc(len).expect("arena exhausted");
        let arena = heap.arena();
        arena.write_u64(node, next);
        arena.write_u64(
            PmPtr(node.0 + 8),
            key.len() as u64 | ((value.len() as u64) << 32),
        );
        arena.write(PmPtr(node.0 + NODE_HDR as u64), key);
        arena.write(PmPtr(node.0 + (NODE_HDR + key.len()) as u64), value);
        node
    }

    fn drain_deferred(&mut self, heap: &mut PlocHeap) {
        if let Some(node) = self.deferred_free.take() {
            let len = Self::node_len(heap, node);
            heap.arena().free(node, len);
        }
    }

    /// Inserts or replaces `key`. Returns `true` when a previous value
    /// was displaced. `op_seq` must be unique and non-zero per operation;
    /// re-invoking with an already-applied `op_seq` returns the recorded
    /// outcome without mutating the map.
    pub fn insert(
        &mut self,
        heap: &mut PlocHeap,
        op_seq: u64,
        key: &[u8],
        value: &[u8],
    ) -> Result<bool, Crashed> {
        if let Some(displaced) = self.ck.saved(heap, op_seq) {
            if self.cas.saved(heap, op_seq).is_some() {
                return Ok(!displaced.is_null());
            }
            // Decision durable but splice never started (the memento is
            // older or torn): durable state is unchanged — re-execute.
        }
        self.drain_deferred(heap);
        if self.len as u64 * 4 > self.nbuckets * 3 {
            self.grow(heap)?;
        }
        let (slot, found) = self.search(heap, key);
        let next = match found {
            Some(node) => heap.arena().read_u64(node), // splice-replace
            None => heap.arena().read_u64(slot),       // push at head
        };
        let node = Self::write_node(heap, next, key, value);
        let node_bytes = NODE_HDR + key.len() + value.len();
        heap.persist(node, node_bytes)?;
        let displaced = found.unwrap_or(PmPtr::NULL);
        self.ck.record(heap, op_seq, displaced)?;
        let expected = match found {
            Some(f) => f.0,
            None => next,
        };
        let out = self.cas.cas(heap, op_seq, slot, expected, node.0)?;
        debug_assert!(out.swapped, "single-owner CAS cannot fail");
        if let Some(old) = found {
            self.deferred_free = Some(old);
        } else {
            self.len += 1;
        }
        Ok(found.is_some())
    }

    /// Removes `key`. Returns `true` when an entry was removed. Same
    /// `op_seq` replay contract as [`insert`](DetectableHashMap::insert).
    pub fn remove(
        &mut self,
        heap: &mut PlocHeap,
        op_seq: u64,
        key: &[u8],
    ) -> Result<bool, Crashed> {
        if let Some(displaced) = self.ck.saved(heap, op_seq) {
            if displaced.is_null() {
                // Absent-key removes never splice; the checkpoint alone
                // is the whole durable footprint.
                return Ok(false);
            }
            if self.cas.saved(heap, op_seq).is_some() {
                return Ok(true);
            }
        }
        self.drain_deferred(heap);
        let (slot, found) = self.search(heap, key);
        let displaced = found.unwrap_or(PmPtr::NULL);
        self.ck.record(heap, op_seq, displaced)?;
        let Some(node) = found else {
            return Ok(false);
        };
        let next = heap.arena().read_u64(node);
        let out = self.cas.cas(heap, op_seq, slot, node.0, next)?;
        debug_assert!(out.swapped, "single-owner CAS cannot fail");
        self.deferred_free = Some(node);
        self.len -= 1;
        Ok(true)
    }

    /// Looks up `key`, copying the value out of PM.
    pub fn get(&self, heap: &mut PlocHeap, key: &[u8]) -> Option<Vec<u8>> {
        let (_, found) = self.search(heap, key);
        found.map(|node| Self::node_value(heap, node))
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current bucket-array width.
    pub fn bucket_count(&self) -> u64 {
        self.nbuckets
    }

    /// Rebuilds into a ×2 bucket array (copying every node) and commits
    /// with one atomic root swap; a crash mid-rebuild leaks the copies
    /// but leaves the old table fully intact.
    fn grow(&mut self, heap: &mut PlocHeap) -> Result<(), Crashed> {
        let new_n = self.nbuckets * 2;
        let new_arr = Self::alloc_buckets(heap, new_n)?;
        let mut old_nodes = Vec::new();
        for b in 0..self.nbuckets {
            let mut cur = heap.arena().read_u64(self.bucket_slot(b));
            while cur != 0 {
                let node = PmPtr(cur);
                old_nodes.push(node);
                let key = Self::node_key(heap, node);
                let value = Self::node_value(heap, node);
                let head_slot = PmPtr(new_arr.0 + (fnv1a(&key) % new_n) * 8);
                let head = heap.arena().read_u64(head_slot);
                let copy = Self::write_node(heap, head, &key, &value);
                let copy_bytes = NODE_HDR + key.len() + value.len();
                heap.persist(copy, copy_bytes)?;
                heap.arena().write_u64(head_slot, copy.0);
                cur = heap.arena().read_u64(node);
            }
        }
        let nbytes = (new_n as usize) * 8;
        heap.persist(new_arr, nbytes)?;
        let new_block = heap.arena().alloc(32).expect("arena exhausted");
        let arena = heap.arena();
        arena.write_u64(new_block, new_arr.0);
        arena.write_u64(PmPtr(new_block.0 + 8), new_n);
        arena.write_u64(PmPtr(new_block.0 + 16), self.ck.ptr().0);
        arena.write_u64(PmPtr(new_block.0 + 24), self.cas.ptr().0);
        heap.persist(new_block, 32)?;
        heap.persist_root(new_block.0)?;
        // Committed: retire the old generation (allocator state is
        // volatile, so this is bookkeeping only).
        for node in old_nodes {
            let len = Self::node_len(heap, node);
            heap.arena().free(node, len);
        }
        heap.arena().free(self.array, (self.nbuckets as usize) * 8);
        heap.arena().free(self.block, 32);
        self.block = new_block;
        self.array = new_arr;
        self.nbuckets = new_n;
        Ok(())
    }

    fn walk_len(&self, heap: &mut PlocHeap) -> usize {
        let mut n = 0;
        for b in 0..self.nbuckets {
            let mut cur = heap.arena().read_u64(self.bucket_slot(b));
            while cur != 0 {
                n += 1;
                cur = heap.arena().read_u64(PmPtr(cur));
            }
        }
        n
    }

    /// Content digest: FNV-1a over every `(key, value)` pair in bucket
    /// and chain order, folded with the length. Two maps with identical
    /// durable content (and bucket width) digest identically.
    pub fn digest(&self, heap: &mut PlocHeap) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let fold = |h: &mut u64, bytes: &[u8]| {
            for &b in bytes {
                *h ^= b as u64;
                *h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for b in 0..self.nbuckets {
            let mut cur = heap.arena().read_u64(self.bucket_slot(b));
            while cur != 0 {
                let node = PmPtr(cur);
                let key = Self::node_key(heap, node);
                let value = Self::node_value(heap, node);
                fold(&mut h, &(key.len() as u32).to_le_bytes());
                fold(&mut h, &key);
                fold(&mut h, &(value.len() as u32).to_le_bytes());
                fold(&mut h, &value);
                cur = heap.arena().read_u64(node);
            }
        }
        fold(&mut h, &(self.len as u64).to_le_bytes());
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_remove_and_replace() {
        let mut heap = PlocHeap::new(1 << 20);
        let mut map = DetectableHashMap::create(&mut heap).unwrap();
        assert!(!map.insert(&mut heap, 1, b"alpha", b"1").unwrap());
        assert!(map.insert(&mut heap, 2, b"alpha", b"2").unwrap());
        assert_eq!(map.get(&mut heap, b"alpha"), Some(b"2".to_vec()));
        assert_eq!(map.len(), 1);
        assert!(map.remove(&mut heap, 3, b"alpha").unwrap());
        assert!(!map.remove(&mut heap, 4, b"alpha").unwrap());
        assert!(map.is_empty());
    }

    #[test]
    fn replay_of_applied_ops_does_not_mutate() {
        let mut heap = PlocHeap::new(1 << 20);
        let mut map = DetectableHashMap::create(&mut heap).unwrap();
        map.insert(&mut heap, 1, b"k", b"v1").unwrap();
        let before = map.digest(&mut heap);
        // Redo-log resend of the already-applied op.
        assert!(!map.insert(&mut heap, 1, b"k", b"v1").unwrap());
        assert_eq!(map.digest(&mut heap), before);
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn grows_past_the_load_factor_and_keeps_content() {
        let mut heap = PlocHeap::new(1 << 22);
        let mut map = DetectableHashMap::create(&mut heap).unwrap();
        let mut model = BTreeMap::new();
        for i in 0u64..200 {
            let k = format!("key-{i:04}");
            let v = format!("val-{i}");
            map.insert(&mut heap, i + 1, k.as_bytes(), v.as_bytes())
                .unwrap();
            model.insert(k, v);
        }
        assert!(map.bucket_count() > INITIAL_BUCKETS);
        assert_eq!(map.len(), model.len());
        for (k, v) in &model {
            assert_eq!(
                map.get(&mut heap, k.as_bytes()),
                Some(v.clone().into_bytes())
            );
        }
        // Reopen from the root: same content, same digest.
        let d = map.digest(&mut heap);
        let reopened = DetectableHashMap::open(&mut heap).unwrap();
        assert_eq!(reopened.len(), model.len());
        assert_eq!(reopened.digest(&mut heap), d);
    }

    #[test]
    fn open_after_clean_persist_restores_everything() {
        let mut heap = PlocHeap::new(1 << 20);
        let mut map = DetectableHashMap::create(&mut heap).unwrap();
        map.insert(&mut heap, 1, b"a", b"1").unwrap();
        map.insert(&mut heap, 2, b"b", b"2").unwrap();
        let d = map.digest(&mut heap);
        heap.crash_losing_all();
        let map = DetectableHashMap::open(&mut heap).unwrap();
        assert_eq!(map.len(), 2);
        assert_eq!(map.digest(&mut heap), d);
        assert_eq!(map.get(&mut heap, b"b"), Some(b"2".to_vec()));
    }
}
