//! A probabilistic skip list (the PMDK `skiplist` workload).

use super::{KvStore, OpStats};

const MAX_LEVEL: usize = 16;
const NIL: usize = usize::MAX;

/// A lightweight deterministic generator for tower heights; keeping it
/// local (rather than threading the simulation RNG through every insert)
/// keeps the structure self-contained and reproducible from its seed.
#[derive(Debug, Clone)]
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[derive(Debug)]
struct SkipNode {
    key: Vec<u8>,
    value: Vec<u8>,
    next: Vec<usize>, // one forward pointer per level
}

/// A skip list over byte-string keys.
#[derive(Debug)]
pub struct SkipListKv {
    nodes: Vec<SkipNode>,
    free: Vec<usize>,
    head: Vec<usize>, // forward pointers of the sentinel head
    level: usize,
    len: usize,
    rng: SplitMix,
    stats: OpStats,
}

impl SkipListKv {
    /// Creates an empty skip list with a deterministic tower-height seed.
    pub fn new(seed: u64) -> SkipListKv {
        SkipListKv {
            nodes: Vec::new(),
            free: Vec::new(),
            head: vec![NIL; MAX_LEVEL],
            level: 1,
            len: 0,
            rng: SplitMix(seed ^ 0xABCD_EF01),
            stats: OpStats::default(),
        }
    }

    fn random_level(&mut self) -> usize {
        let mut lvl = 1;
        while lvl < MAX_LEVEL && self.rng.next() & 3 == 0 {
            lvl += 1; // p = 1/4
        }
        lvl
    }

    /// Finds the predecessor node index (or NIL for head) at each level;
    /// returns (`update` vector, candidate index).
    fn find(&mut self, key: &[u8]) -> (Vec<usize>, usize) {
        let mut update = vec![NIL; MAX_LEVEL];
        let mut cur = NIL; // NIL as current means "head sentinel"
        for lvl in (0..self.level).rev() {
            loop {
                let next = if cur == NIL {
                    self.head[lvl]
                } else {
                    self.nodes[cur].next[lvl]
                };
                if next == NIL {
                    break;
                }
                self.stats.nodes_visited += 1;
                self.stats.key_comparisons += 1;
                if self.nodes[next].key.as_slice() < key {
                    cur = next;
                } else {
                    break;
                }
            }
            update[lvl] = cur;
        }
        let candidate = if cur == NIL {
            self.head[0]
        } else {
            self.nodes[cur].next[0]
        };
        (update, candidate)
    }

    fn next_of(&self, node: usize, lvl: usize) -> usize {
        if node == NIL {
            self.head[lvl]
        } else {
            self.nodes[node].next[lvl]
        }
    }

    fn set_next(&mut self, node: usize, lvl: usize, to: usize) {
        if node == NIL {
            self.head[lvl] = to;
        } else {
            self.nodes[node].next[lvl] = to;
        }
    }

    /// Validates level ordering invariants (test support).
    #[cfg(test)]
    fn validate(&self) {
        for lvl in 0..self.level {
            let mut cur = self.head[lvl];
            let mut prev_key: Option<&[u8]> = None;
            while cur != NIL {
                let k = self.nodes[cur].key.as_slice();
                if let Some(p) = prev_key {
                    assert!(p < k, "keys out of order at level {lvl}");
                }
                prev_key = Some(k);
                // Every node present at lvl must be present at lvl-1.
                assert!(self.nodes[cur].next.len() > lvl);
                cur = self.nodes[cur].next[lvl];
            }
        }
    }
}

impl KvStore for SkipListKv {
    fn name(&self) -> &'static str {
        "skiplist"
    }

    fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        let (_, cand) = self.find(key);
        if cand != NIL {
            self.stats.key_comparisons += 1;
            if self.nodes[cand].key == key {
                let v = self.nodes[cand].value.clone();
                self.stats.bytes_moved += v.len() as u64;
                return Some(v);
            }
        }
        None
    }

    fn insert(&mut self, key: &[u8], value: &[u8]) -> Option<Vec<u8>> {
        let (update, cand) = self.find(key);
        self.stats.bytes_moved += (key.len() + value.len()) as u64;
        if cand != NIL && self.nodes[cand].key == key {
            self.stats.key_comparisons += 1;
            return Some(std::mem::replace(
                &mut self.nodes[cand].value,
                value.to_vec(),
            ));
        }
        let lvl = self.random_level();
        if lvl > self.level {
            self.level = lvl;
        }
        let node = SkipNode {
            key: key.to_vec(),
            value: value.to_vec(),
            next: vec![NIL; lvl],
        };
        let idx = if let Some(i) = self.free.pop() {
            self.nodes[i] = node;
            i
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        };
        #[allow(clippy::needless_range_loop)] // l indexes two structures
        for l in 0..lvl {
            let pred = update[l];
            let succ = self.next_of(pred, l);
            self.nodes[idx].next[l] = succ;
            self.set_next(pred, l, idx);
        }
        self.len += 1;
        None
    }

    fn remove(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        let (update, cand) = self.find(key);
        if cand == NIL || self.nodes[cand].key != key {
            return None;
        }
        self.stats.key_comparisons += 1;
        let height = self.nodes[cand].next.len();
        #[allow(clippy::needless_range_loop)] // l indexes two structures
        for l in 0..height {
            let pred = update[l];
            debug_assert_eq!(self.next_of(pred, l), cand);
            let succ = self.nodes[cand].next[l];
            self.set_next(pred, l, succ);
        }
        while self.level > 1 && self.head[self.level - 1] == NIL {
            self.level -= 1;
        }
        self.len -= 1;
        let v = std::mem::take(&mut self.nodes[cand].value);
        self.nodes[cand].key.clear();
        self.free.push(cand);
        self.stats.bytes_moved += v.len() as u64;
        Some(v)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn take_stats(&mut self) -> OpStats {
        std::mem::take(&mut self.stats)
    }

    fn for_each(&self, f: &mut dyn FnMut(&[u8], &[u8])) {
        let mut cur = self.head[0];
        while cur != NIL {
            f(&self.nodes[cur].key, &self.nodes[cur].value);
            cur = self.nodes[cur].next[0];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maintains_sorted_order_across_operations() {
        let mut s = SkipListKv::new(42);
        for i in [5u8, 1, 9, 3, 7, 2, 8, 4, 6, 0] {
            s.insert(&[i], &[i]);
            s.validate();
        }
        let mut keys = Vec::new();
        s.for_each(&mut |k, _| keys.push(k[0]));
        assert_eq!(keys, (0..10).collect::<Vec<u8>>());
        for i in [3u8, 0, 9] {
            assert!(s.remove(&[i]).is_some());
            s.validate();
        }
        assert_eq!(s.len(), 7);
    }

    #[test]
    fn towers_are_bounded_and_reused() {
        let mut s = SkipListKv::new(1);
        for i in 0..500u32 {
            s.insert(&i.to_be_bytes(), b"x");
        }
        assert!(s.level <= MAX_LEVEL);
        let allocated = s.nodes.len();
        for i in 0..500u32 {
            s.remove(&i.to_be_bytes());
        }
        for i in 0..500u32 {
            s.insert(&i.to_be_bytes(), b"y");
        }
        // Node slots were recycled through the free list.
        assert_eq!(s.nodes.len(), allocated);
    }

    #[test]
    fn deterministic_for_a_seed() {
        let heights = |seed| {
            let mut s = SkipListKv::new(seed);
            (0..100).map(|_| s.random_level()).collect::<Vec<_>>()
        };
        assert_eq!(heights(9), heights(9));
        assert_ne!(heights(9), heights(10));
    }
}
