//! A red-black tree (the PMDK `rbtree` workload), CLRS 3rd-edition
//! algorithms with an index-based node pool and a NIL sentinel.

use super::{KvStore, OpStats};

const NIL: usize = 0;

#[derive(Debug, Clone)]
struct RbNode {
    key: Vec<u8>,
    value: Vec<u8>,
    left: usize,
    right: usize,
    parent: usize,
    red: bool,
}

impl RbNode {
    fn sentinel() -> RbNode {
        RbNode {
            key: Vec::new(),
            value: Vec::new(),
            left: NIL,
            right: NIL,
            parent: NIL,
            red: false,
        }
    }
}

/// A red-black tree over byte-string keys.
#[derive(Debug)]
pub struct RbTreeKv {
    nodes: Vec<RbNode>,
    free: Vec<usize>,
    root: usize,
    len: usize,
    stats: OpStats,
}

impl Default for RbTreeKv {
    fn default() -> Self {
        Self::new()
    }
}

impl RbTreeKv {
    /// Creates an empty tree.
    pub fn new() -> RbTreeKv {
        RbTreeKv {
            nodes: vec![RbNode::sentinel()],
            free: Vec::new(),
            root: NIL,
            len: 0,
            stats: OpStats::default(),
        }
    }

    fn alloc(&mut self, key: Vec<u8>, value: Vec<u8>) -> usize {
        let node = RbNode {
            key,
            value,
            left: NIL,
            right: NIL,
            parent: NIL,
            red: true,
        };
        if let Some(i) = self.free.pop() {
            self.nodes[i] = node;
            i
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    fn rotate_left(&mut self, x: usize) {
        let y = self.nodes[x].right;
        let yl = self.nodes[y].left;
        self.nodes[x].right = yl;
        if yl != NIL {
            self.nodes[yl].parent = x;
        }
        let xp = self.nodes[x].parent;
        self.nodes[y].parent = xp;
        if xp == NIL {
            self.root = y;
        } else if self.nodes[xp].left == x {
            self.nodes[xp].left = y;
        } else {
            self.nodes[xp].right = y;
        }
        self.nodes[y].left = x;
        self.nodes[x].parent = y;
    }

    fn rotate_right(&mut self, x: usize) {
        let y = self.nodes[x].left;
        let yr = self.nodes[y].right;
        self.nodes[x].left = yr;
        if yr != NIL {
            self.nodes[yr].parent = x;
        }
        let xp = self.nodes[x].parent;
        self.nodes[y].parent = xp;
        if xp == NIL {
            self.root = y;
        } else if self.nodes[xp].right == x {
            self.nodes[xp].right = y;
        } else {
            self.nodes[xp].left = y;
        }
        self.nodes[y].right = x;
        self.nodes[x].parent = y;
    }

    fn insert_fixup(&mut self, mut z: usize) {
        while self.nodes[self.nodes[z].parent].red {
            let p = self.nodes[z].parent;
            let g = self.nodes[p].parent;
            if p == self.nodes[g].left {
                let u = self.nodes[g].right;
                if self.nodes[u].red {
                    self.nodes[p].red = false;
                    self.nodes[u].red = false;
                    self.nodes[g].red = true;
                    z = g;
                } else {
                    if z == self.nodes[p].right {
                        z = p;
                        self.rotate_left(z);
                    }
                    let p = self.nodes[z].parent;
                    let g = self.nodes[p].parent;
                    self.nodes[p].red = false;
                    self.nodes[g].red = true;
                    self.rotate_right(g);
                }
            } else {
                let u = self.nodes[g].left;
                if self.nodes[u].red {
                    self.nodes[p].red = false;
                    self.nodes[u].red = false;
                    self.nodes[g].red = true;
                    z = g;
                } else {
                    if z == self.nodes[p].left {
                        z = p;
                        self.rotate_right(z);
                    }
                    let p = self.nodes[z].parent;
                    let g = self.nodes[p].parent;
                    self.nodes[p].red = false;
                    self.nodes[g].red = true;
                    self.rotate_left(g);
                }
            }
        }
        let r = self.root;
        self.nodes[r].red = false;
    }

    fn transplant(&mut self, u: usize, v: usize) {
        let up = self.nodes[u].parent;
        if up == NIL {
            self.root = v;
        } else if u == self.nodes[up].left {
            self.nodes[up].left = v;
        } else {
            self.nodes[up].right = v;
        }
        // The sentinel's parent may be set transiently; delete_fixup uses it.
        self.nodes[v].parent = up;
    }

    fn minimum(&self, mut x: usize) -> usize {
        while self.nodes[x].left != NIL {
            x = self.nodes[x].left;
        }
        x
    }

    fn delete_fixup(&mut self, mut x: usize) {
        while x != self.root && !self.nodes[x].red {
            let p = self.nodes[x].parent;
            if x == self.nodes[p].left {
                let mut w = self.nodes[p].right;
                if self.nodes[w].red {
                    self.nodes[w].red = false;
                    self.nodes[p].red = true;
                    self.rotate_left(p);
                    w = self.nodes[self.nodes[x].parent].right;
                }
                if !self.nodes[self.nodes[w].left].red && !self.nodes[self.nodes[w].right].red {
                    self.nodes[w].red = true;
                    x = self.nodes[x].parent;
                } else {
                    if !self.nodes[self.nodes[w].right].red {
                        let wl = self.nodes[w].left;
                        self.nodes[wl].red = false;
                        self.nodes[w].red = true;
                        self.rotate_right(w);
                        w = self.nodes[self.nodes[x].parent].right;
                    }
                    let p = self.nodes[x].parent;
                    self.nodes[w].red = self.nodes[p].red;
                    self.nodes[p].red = false;
                    let wr = self.nodes[w].right;
                    self.nodes[wr].red = false;
                    self.rotate_left(p);
                    x = self.root;
                }
            } else {
                let mut w = self.nodes[p].left;
                if self.nodes[w].red {
                    self.nodes[w].red = false;
                    self.nodes[p].red = true;
                    self.rotate_right(p);
                    w = self.nodes[self.nodes[x].parent].left;
                }
                if !self.nodes[self.nodes[w].right].red && !self.nodes[self.nodes[w].left].red {
                    self.nodes[w].red = true;
                    x = self.nodes[x].parent;
                } else {
                    if !self.nodes[self.nodes[w].left].red {
                        let wr = self.nodes[w].right;
                        self.nodes[wr].red = false;
                        self.nodes[w].red = true;
                        self.rotate_left(w);
                        w = self.nodes[self.nodes[x].parent].left;
                    }
                    let p = self.nodes[x].parent;
                    self.nodes[w].red = self.nodes[p].red;
                    self.nodes[p].red = false;
                    let wl = self.nodes[w].left;
                    self.nodes[wl].red = false;
                    self.rotate_right(p);
                    x = self.root;
                }
            }
        }
        self.nodes[x].red = false;
    }

    fn find(&mut self, key: &[u8]) -> usize {
        let mut cur = self.root;
        while cur != NIL {
            self.stats.nodes_visited += 1;
            self.stats.key_comparisons += 1;
            match key.cmp(self.nodes[cur].key.as_slice()) {
                std::cmp::Ordering::Less => cur = self.nodes[cur].left,
                std::cmp::Ordering::Greater => cur = self.nodes[cur].right,
                std::cmp::Ordering::Equal => return cur,
            }
        }
        NIL
    }

    #[cfg(test)]
    fn validate(&self) {
        assert!(!self.nodes[self.root].red, "root must be black");
        assert!(!self.nodes[NIL].red, "sentinel must be black");
        fn walk(
            t: &RbTreeKv,
            x: usize,
            lo: Option<&[u8]>,
            hi: Option<&[u8]>,
            count: &mut usize,
        ) -> usize {
            if x == NIL {
                return 1; // black height contribution of NIL
            }
            let n = &t.nodes[x];
            if let Some(lo) = lo {
                assert!(n.key.as_slice() > lo, "BST order violated");
            }
            if let Some(hi) = hi {
                assert!(n.key.as_slice() < hi, "BST order violated");
            }
            if n.red {
                assert!(!t.nodes[n.left].red, "red node with red left child");
                assert!(!t.nodes[n.right].red, "red node with red right child");
            }
            if n.left != NIL {
                assert_eq!(t.nodes[n.left].parent, x, "bad parent link");
            }
            if n.right != NIL {
                assert_eq!(t.nodes[n.right].parent, x, "bad parent link");
            }
            *count += 1;
            let bl = walk(t, n.left, lo, Some(&n.key), count);
            let br = walk(t, n.right, Some(&n.key), hi, count);
            assert_eq!(bl, br, "black heights differ");
            bl + usize::from(!n.red)
        }
        let mut count = 0;
        walk(self, self.root, None, None, &mut count);
        assert_eq!(count, self.len, "len mismatch");
    }
}

impl KvStore for RbTreeKv {
    fn name(&self) -> &'static str {
        "rbtree"
    }

    fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        let n = self.find(key);
        if n == NIL {
            None
        } else {
            let v = self.nodes[n].value.clone();
            self.stats.bytes_moved += v.len() as u64;
            Some(v)
        }
    }

    fn insert(&mut self, key: &[u8], value: &[u8]) -> Option<Vec<u8>> {
        self.stats.bytes_moved += (key.len() + value.len()) as u64;
        let mut parent = NIL;
        let mut cur = self.root;
        let mut went_left = false;
        while cur != NIL {
            self.stats.nodes_visited += 1;
            self.stats.key_comparisons += 1;
            parent = cur;
            match key.cmp(self.nodes[cur].key.as_slice()) {
                std::cmp::Ordering::Less => {
                    cur = self.nodes[cur].left;
                    went_left = true;
                }
                std::cmp::Ordering::Greater => {
                    cur = self.nodes[cur].right;
                    went_left = false;
                }
                std::cmp::Ordering::Equal => {
                    return Some(std::mem::replace(
                        &mut self.nodes[cur].value,
                        value.to_vec(),
                    ));
                }
            }
        }
        let z = self.alloc(key.to_vec(), value.to_vec());
        self.nodes[z].parent = parent;
        if parent == NIL {
            self.root = z;
        } else if went_left {
            self.nodes[parent].left = z;
        } else {
            self.nodes[parent].right = z;
        }
        self.insert_fixup(z);
        self.len += 1;
        None
    }

    fn remove(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        let z = self.find(key);
        if z == NIL {
            return None;
        }
        let mut y = z;
        let mut y_was_red = self.nodes[y].red;
        let x;
        if self.nodes[z].left == NIL {
            x = self.nodes[z].right;
            self.transplant(z, x);
        } else if self.nodes[z].right == NIL {
            x = self.nodes[z].left;
            self.transplant(z, x);
        } else {
            y = self.minimum(self.nodes[z].right);
            y_was_red = self.nodes[y].red;
            x = self.nodes[y].right;
            if self.nodes[y].parent == z {
                self.nodes[x].parent = y;
            } else {
                self.transplant(y, x);
                let zr = self.nodes[z].right;
                self.nodes[y].right = zr;
                self.nodes[zr].parent = y;
            }
            self.transplant(z, y);
            let zl = self.nodes[z].left;
            self.nodes[y].left = zl;
            self.nodes[zl].parent = y;
            self.nodes[y].red = self.nodes[z].red;
        }
        if !y_was_red {
            self.delete_fixup(x);
        }
        let value = std::mem::take(&mut self.nodes[z].value);
        self.nodes[z].key.clear();
        self.free.push(z);
        self.len -= 1;
        self.stats.bytes_moved += value.len() as u64;
        // Keep the sentinel pristine for the next operation.
        self.nodes[NIL] = RbNode::sentinel();
        Some(value)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn take_stats(&mut self) -> OpStats {
        std::mem::take(&mut self.stats)
    }

    fn for_each(&self, f: &mut dyn FnMut(&[u8], &[u8])) {
        fn walk(t: &RbTreeKv, x: usize, f: &mut dyn FnMut(&[u8], &[u8])) {
            if x == NIL {
                return;
            }
            walk(t, t.nodes[x].left, f);
            f(&t.nodes[x].key, &t.nodes[x].value);
            walk(t, t.nodes[x].right, f);
        }
        walk(self, self.root, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn red_black_invariants_hold_during_sequential_churn() {
        let mut t = RbTreeKv::new();
        for i in 0..300u32 {
            t.insert(&i.to_be_bytes(), &[0]);
            t.validate();
        }
        for i in (0..300u32).step_by(3) {
            assert!(t.remove(&i.to_be_bytes()).is_some());
            t.validate();
        }
        assert_eq!(t.len(), 200);
    }

    #[test]
    fn in_order_iteration_is_sorted() {
        let mut t = RbTreeKv::new();
        for i in [42u8, 17, 99, 3, 58, 23, 77, 8] {
            t.insert(&[i], &[i]);
        }
        let mut keys = Vec::new();
        t.for_each(&mut |k, _| keys.push(k[0]));
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn delete_cases_with_two_children() {
        // Exercise the successor-transplant path specifically.
        let mut t = RbTreeKv::new();
        for i in [50u8, 25, 75, 12, 37, 62, 87, 6, 18, 31, 43] {
            t.insert(&[i], &[i]);
        }
        // 25 and 50 have two children.
        assert_eq!(t.remove(&[25]), Some(vec![25]));
        t.validate();
        assert_eq!(t.remove(&[50]), Some(vec![50]));
        t.validate();
        assert_eq!(t.len(), 9);
        for i in [12u8, 37, 75, 6, 18, 31, 43, 62, 87] {
            assert_eq!(t.get(&[i]), Some(vec![i]));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn invariants_hold_under_random_ops(
            ops in prop::collection::vec((prop::collection::vec(0u8..32, 1..3), any::<bool>()), 0..250)
        ) {
            let mut t = RbTreeKv::new();
            for (key, is_insert) in ops {
                if is_insert {
                    t.insert(&key, b"v");
                } else {
                    t.remove(&key);
                }
                t.validate();
            }
        }
    }
}
