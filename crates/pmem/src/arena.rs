//! A byte-addressable persistent-memory arena with cache-line-granular
//! crash semantics.
//!
//! Real persistent memory sits behind a volatile write-back cache: a store
//! only becomes durable once its cache line is flushed (`clwb`) and the
//! flush is ordered by a fence (`sfence`) — *or* whenever the cache decides
//! to evict the line on its own. The adversarial consequence: at a crash,
//! any subset of un-fenced dirty lines may have reached the media.
//!
//! [`PmArena`] models exactly that. Stores mark lines dirty while
//! remembering their last durable contents; [`PmArena::flush`] +
//! [`PmArena::fence`] commit lines; [`PmArena::crash`] durably keeps a
//! random subset of the remaining dirty lines and reverts the rest. Crash-
//! consistency property tests in [`crate::PersistentKv`] drive recovery
//! across many random subsets.

use std::collections::HashMap;
use std::fmt;

use pmnet_sim::SimRng;

/// Cache-line size used for persistence granularity.
pub const LINE: usize = 64;

/// An offset into a [`PmArena`] (a "persistent pointer").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PmPtr(pub u64);

impl PmPtr {
    /// The null pointer (offset 0 is reserved and never allocated).
    pub const NULL: PmPtr = PmPtr(0);

    /// True if this is the reserved null pointer.
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// The byte offset.
    pub fn offset(self) -> usize {
        self.0 as usize
    }
}

/// Dirty-line bookkeeping: the last durable contents of a line, plus
/// whether a flush for it has been issued since the last fence.
#[derive(Debug, Clone)]
struct DirtyLine {
    durable: Vec<u8>,
    flushed: bool,
}

/// Counters of persistence operations (inputs to [`crate::CostModel`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Lines flushed (`clwb` equivalents).
    pub flushes: u64,
    /// Fences issued (`sfence` equivalents).
    pub fences: u64,
    /// Bytes written by stores.
    pub bytes_written: u64,
    /// Bytes read by loads.
    pub bytes_read: u64,
}

/// A simulated persistent-memory region with a bump/free-list allocator.
///
/// # Example
///
/// ```
/// use pmnet_pmem::PmArena;
/// use pmnet_sim::SimRng;
///
/// let mut pm = PmArena::new(4096);
/// let p = pm.alloc(8).unwrap();
/// pm.write_u64(p, 42);
/// pm.flush(p, 8);
/// pm.fence();
/// // A crash cannot lose fenced data.
/// pm.crash(&mut SimRng::seed(0));
/// assert_eq!(pm.read_u64(p), 42);
/// ```
pub struct PmArena {
    data: Vec<u8>,
    dirty: HashMap<usize, DirtyLine>,
    next_free: usize,
    free_lists: HashMap<usize, Vec<usize>>,
    root: u64,
    stats: ArenaStats,
}

impl fmt::Debug for PmArena {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PmArena")
            .field("capacity", &self.data.len())
            .field("allocated", &self.next_free)
            .field("dirty_lines", &self.dirty.len())
            .finish()
    }
}

impl PmArena {
    /// Creates an arena of `capacity` bytes (rounded up to a line).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> PmArena {
        assert!(capacity > 0, "arena capacity must be positive");
        let capacity = capacity.div_ceil(LINE) * LINE;
        PmArena {
            data: vec![0; capacity],
            dirty: HashMap::new(),
            // Offset 0 is reserved so PmPtr::NULL is never a valid object.
            next_free: LINE,
            free_lists: HashMap::new(),
            root: 0,
            stats: ArenaStats::default(),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Bytes handed out by the allocator (highwater, ignoring free lists).
    pub fn allocated(&self) -> usize {
        self.next_free
    }

    /// Persistence-operation counters since the last [`take_stats`].
    ///
    /// [`take_stats`]: PmArena::take_stats
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }

    /// Returns and resets the persistence counters.
    pub fn take_stats(&mut self) -> ArenaStats {
        std::mem::take(&mut self.stats)
    }

    fn size_class(len: usize) -> usize {
        len.next_power_of_two().max(8)
    }

    /// Allocates `len` bytes, reusing freed blocks of the same size class.
    /// Returns `None` when the arena is exhausted.
    pub fn alloc(&mut self, len: usize) -> Option<PmPtr> {
        assert!(len > 0, "zero-length allocation");
        let class = Self::size_class(len);
        if let Some(off) = self.free_lists.get_mut(&class).and_then(Vec::pop) {
            return Some(PmPtr(off as u64));
        }
        if self.next_free + class > self.data.len() {
            return None;
        }
        let off = self.next_free;
        self.next_free += class;
        Some(PmPtr(off as u64))
    }

    /// Returns a block to the allocator.
    ///
    /// # Panics
    ///
    /// Panics if `ptr` is null.
    pub fn free(&mut self, ptr: PmPtr, len: usize) {
        assert!(!ptr.is_null(), "freeing null pointer");
        let class = Self::size_class(len);
        self.free_lists.entry(class).or_default().push(ptr.offset());
    }

    fn mark_dirty(&mut self, start: usize, len: usize) {
        let first = start / LINE;
        let last = (start + len - 1) / LINE;
        for line in first..=last {
            self.dirty.entry(line).or_insert_with(|| DirtyLine {
                durable: self.data[line * LINE..(line + 1) * LINE].to_vec(),
                flushed: false,
            });
            // A new store to an already-flushed-but-unfenced line reopens
            // it: the line's durability is again unordered.
            if let Some(d) = self.dirty.get_mut(&line) {
                d.flushed = false;
            }
        }
    }

    /// Stores `bytes` at `ptr` (volatile until flushed and fenced).
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access.
    pub fn write(&mut self, ptr: PmPtr, bytes: &[u8]) {
        let start = ptr.offset();
        assert!(
            start + bytes.len() <= self.data.len(),
            "write out of bounds: {start}+{} > {}",
            bytes.len(),
            self.data.len()
        );
        self.mark_dirty(start, bytes.len());
        self.data[start..start + bytes.len()].copy_from_slice(bytes);
        self.stats.bytes_written += bytes.len() as u64;
    }

    /// Loads `len` bytes at `ptr` (sees the latest stores, durable or not,
    /// exactly like a CPU load).
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access.
    pub fn read(&mut self, ptr: PmPtr, len: usize) -> &[u8] {
        let start = ptr.offset();
        assert!(start + len <= self.data.len(), "read out of bounds");
        self.stats.bytes_read += len as u64;
        &self.data[start..start + len]
    }

    /// Stores a little-endian u64.
    pub fn write_u64(&mut self, ptr: PmPtr, v: u64) {
        self.write(ptr, &v.to_le_bytes());
    }

    /// Loads a little-endian u64.
    pub fn read_u64(&mut self, ptr: PmPtr) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.read(ptr, 8));
        u64::from_le_bytes(b)
    }

    /// Issues flushes (`clwb`) for the lines covering `[ptr, ptr+len)`.
    /// Flushed lines become durable at the next [`fence`].
    ///
    /// [`fence`]: PmArena::fence
    pub fn flush(&mut self, ptr: PmPtr, len: usize) {
        assert!(len > 0, "zero-length flush");
        let start = ptr.offset();
        let first = start / LINE;
        let last = (start + len - 1) / LINE;
        for line in first..=last {
            if let Some(d) = self.dirty.get_mut(&line) {
                if !d.flushed {
                    d.flushed = true;
                    self.stats.flushes += 1;
                }
            }
        }
    }

    /// Orders all issued flushes (`sfence`): every flushed line becomes
    /// durable.
    pub fn fence(&mut self) {
        self.dirty.retain(|_, d| !d.flushed);
        self.stats.fences += 1;
    }

    /// Convenience: flush the range and fence.
    pub fn persist(&mut self, ptr: PmPtr, len: usize) {
        self.flush(ptr, len);
        self.fence();
    }

    /// Sets the durable root pointer (flushed and fenced immediately; real
    /// PM roots live at a fixed offset — we model the same atomicity).
    pub fn set_root(&mut self, v: u64) {
        self.root = v;
        self.stats.flushes += 1;
        self.stats.fences += 1;
    }

    /// Reads the root pointer.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Simulates a power failure: each dirty line independently either
    /// reached the media (kept) or did not (reverted to its last durable
    /// contents). Returns the number of lines that were lost.
    ///
    /// After `crash`, the arena contents are exactly what a recovery
    /// procedure would find on the media.
    pub fn crash(&mut self, rng: &mut SimRng) -> usize {
        let mut lost = 0;
        let mut lines: Vec<usize> = self.dirty.keys().copied().collect();
        lines.sort_unstable(); // determinism: HashMap order is arbitrary
        for line in lines {
            let d = self.dirty.remove(&line).expect("line vanished");
            // 50/50 is the most adversarial-ish mix for testing; callers
            // that need all-lost or all-kept can fence first.
            if rng.chance(0.5) {
                self.data[line * LINE..(line + 1) * LINE].copy_from_slice(&d.durable);
                lost += 1;
            }
        }
        lost
    }

    /// Like [`crash`](PmArena::crash) but *all* unflushed data is lost —
    /// the worst case.
    pub fn crash_losing_all(&mut self) -> usize {
        let mut lost = 0;
        let mut lines: Vec<usize> = self.dirty.keys().copied().collect();
        lines.sort_unstable();
        for line in lines {
            let d = self.dirty.remove(&line).expect("line vanished");
            self.data[line * LINE..(line + 1) * LINE].copy_from_slice(&d.durable);
            lost += 1;
        }
        lost
    }

    /// Number of currently dirty (not yet durable) lines.
    pub fn dirty_lines(&self) -> usize {
        self.dirty.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_never_returns_null_and_respects_capacity() {
        let mut pm = PmArena::new(256);
        let a = pm.alloc(8).unwrap();
        assert!(!a.is_null());
        // 64 reserved + 8->8 class... exhaust it.
        let mut count = 1;
        while pm.alloc(64).is_some() {
            count += 1;
            assert!(count < 100, "allocator never exhausts");
        }
    }

    #[test]
    fn free_list_reuses_blocks() {
        let mut pm = PmArena::new(1024);
        let a = pm.alloc(100).unwrap();
        pm.free(a, 100);
        let b = pm.alloc(100).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn write_read_round_trip() {
        let mut pm = PmArena::new(1024);
        let p = pm.alloc(16).unwrap();
        pm.write(p, b"hello persistent");
        assert_eq!(pm.read(p, 16), b"hello persistent");
        pm.write_u64(p, 0xDEAD_BEEF);
        assert_eq!(pm.read_u64(p), 0xDEAD_BEEF);
    }

    #[test]
    fn unflushed_data_is_lost_on_worst_case_crash() {
        let mut pm = PmArena::new(1024);
        let p = pm.alloc(8).unwrap();
        pm.write_u64(p, 1);
        pm.persist(p, 8);
        pm.write_u64(p, 2); // not flushed
        let lost = pm.crash_losing_all();
        assert_eq!(lost, 1);
        assert_eq!(pm.read_u64(p), 1);
    }

    #[test]
    fn flushed_but_unfenced_data_may_be_lost() {
        let mut pm = PmArena::new(1024);
        let p = pm.alloc(8).unwrap();
        pm.write_u64(p, 7);
        pm.flush(p, 8);
        // No fence: still dirty.
        assert_eq!(pm.dirty_lines(), 1);
        pm.crash_losing_all();
        assert_eq!(pm.read_u64(p), 0);
    }

    #[test]
    fn fenced_data_survives_any_crash() {
        let mut rng = SimRng::seed(1);
        for seed in 0..20 {
            let mut pm = PmArena::new(1024);
            let p = pm.alloc(8).unwrap();
            pm.write_u64(p, seed);
            pm.persist(p, 8);
            pm.crash(&mut rng);
            assert_eq!(pm.read_u64(p), seed);
        }
    }

    #[test]
    fn store_after_flush_reopens_line() {
        let mut pm = PmArena::new(1024);
        let p = pm.alloc(8).unwrap();
        pm.write_u64(p, 1);
        pm.flush(p, 8);
        pm.write_u64(p, 2); // reopens the line
        pm.fence(); // the reopened line is NOT committed by this fence
        assert_eq!(pm.dirty_lines(), 1);
        pm.crash_losing_all();
        assert_eq!(pm.read_u64(p), 0, "neither store was durable");
    }

    #[test]
    fn random_crash_keeps_a_subset() {
        let mut pm = PmArena::new(64 * 100);
        let mut ptrs = Vec::new();
        for i in 0..50u64 {
            let p = pm.alloc(64).unwrap();
            pm.write_u64(p, i + 1);
            ptrs.push(p);
        }
        let mut rng = SimRng::seed(3);
        let lost = pm.crash(&mut rng);
        assert!(lost > 5 && lost < 45, "lost={lost} should be ~half");
        // Each surviving line has its full write; each lost line is zero.
        for (i, p) in ptrs.iter().enumerate() {
            let v = pm.read_u64(*p);
            assert!(v == 0 || v == i as u64 + 1);
        }
    }

    #[test]
    fn root_pointer_is_durable() {
        let mut pm = PmArena::new(1024);
        pm.set_root(99);
        pm.crash_losing_all();
        assert_eq!(pm.root(), 99);
    }

    #[test]
    fn stats_count_operations() {
        let mut pm = PmArena::new(1024);
        let p = pm.alloc(8).unwrap();
        pm.write_u64(p, 1);
        pm.flush(p, 8);
        pm.fence();
        let _ = pm.read_u64(p);
        let s = pm.take_stats();
        assert_eq!(s.bytes_written, 8);
        assert_eq!(s.flushes, 1);
        assert_eq!(s.fences, 1);
        assert_eq!(s.bytes_read, 8);
        assert_eq!(pm.stats(), ArenaStats::default());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_write_panics() {
        let mut pm = PmArena::new(64);
        pm.write(PmPtr(60), &[0u8; 16]);
    }

    #[test]
    fn alloc_exhaustion_returns_none() {
        let mut pm = PmArena::new(128);
        assert!(pm.alloc(64).is_some());
        assert!(pm.alloc(64).is_none());
    }
}
