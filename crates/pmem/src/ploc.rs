//! Detectable-recovery primitives (Memento-style "PLOC": per-op memento
//! slots in persistent memory).
//!
//! A *detectably recoverable* operation can tell, after a crash, whether
//! it already executed — and if so, what it returned — so replaying the
//! same operation is exactly-once by construction. Two primitives carry
//! the whole protocol:
//!
//! * [`Checkpoint`] — a two-slot value cell: `run(op_seq, f)` computes a
//!   value at most once per `op_seq` and persists it before returning;
//!   a replay with the same `op_seq` returns the recorded value without
//!   re-running `f`. Each slot sandwiches the sequence number around the
//!   value (`[seq][value][seq]`), so a torn line (the arena reverts
//!   cache lines independently) can never masquerade as a valid record.
//! * [`DetectableCas`] — a recoverable compare-and-swap on a PM word.
//!   The memento records `(op_seq, state, new, old, target)` and is
//!   persisted *before* the target word is touched; recovery finds a
//!   `PENDING` memento and re-executes the (idempotent) target write,
//!   or a `DONE` memento and returns the recorded outcome.
//!
//! Every durability edge goes through [`PlocHeap::persist`], which counts
//! *persist points* and can be armed ([`PlocHeap::arm`]) to simulate a
//! crash at the N-th point. The crash-point sweep tests use this to
//! kill-and-replay a recorded operation at **every** persist point and
//! assert exactly-once application (Memento §6.1-style stress).
//!
//! The ack-path contract: a caller may only acknowledge an operation
//! after the primitive's final persist returned `Ok` — every memento a
//! completed (ackable) op wrote is durable, so the server's redo-log
//! dedup composes with replay: a resent `op_seq` hits the memento and
//! returns the recorded outcome without mutating anything.
//!
//! Slots are reused across operations (ping-pong for [`Checkpoint`],
//! overwrite for [`DetectableCas`]), so a memento detects the **latest**
//! operation on its structure — exactly the one that can be mid-flight
//! at a crash. Older duplicates never reach the structure: the durable
//! applied-seq table dedups them upstream.

use std::fmt;
use std::marker::PhantomData;

use pmnet_sim::SimRng;

use crate::arena::{ArenaStats, PmArena, PmPtr};

/// A simulated power failure was injected at a persist point; the
/// operation did not complete and must be replayed after recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crashed;

impl fmt::Display for Crashed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "crashed at an armed persist point")
    }
}

impl std::error::Error for Crashed {}

/// A [`PmArena`] wrapper that numbers every durability edge.
///
/// All flush+fence pairs issued by the detectable structures go through
/// [`persist`](PlocHeap::persist) (or [`persist_root`](PlocHeap::persist_root)),
/// which increments a monotone persist-point counter. Arming the heap
/// makes the N-th future persist return [`Crashed`] *without executing*,
/// exactly as if power failed before the fence — combined with
/// [`crash_losing_all`](PlocHeap::crash_losing_all) or a seeded
/// [`crash`](PlocHeap::crash), this enumerates every crash point of a
/// recorded operation.
#[derive(Debug)]
pub struct PlocHeap {
    pm: PmArena,
    persist_points: u64,
    trip_at: Option<u64>,
}

impl PlocHeap {
    /// Wraps a fresh arena of `capacity` bytes.
    pub fn new(capacity: usize) -> PlocHeap {
        PlocHeap {
            pm: PmArena::new(capacity),
            persist_points: 0,
            trip_at: None,
        }
    }

    /// Total persist points executed *or tripped* so far.
    pub fn persist_points(&self) -> u64 {
        self.persist_points
    }

    /// Arms the heap: counting from now, the `nth` persist point (1-based)
    /// returns [`Crashed`] instead of persisting.
    pub fn arm(&mut self, nth: u64) {
        assert!(nth >= 1, "persist points are 1-based");
        self.trip_at = Some(self.persist_points + nth);
    }

    /// Disarms a pending trip.
    pub fn disarm(&mut self) {
        self.trip_at = None;
    }

    /// Flushes and fences `[ptr, ptr+len)` — one persist point.
    pub fn persist(&mut self, ptr: PmPtr, len: usize) -> Result<(), Crashed> {
        self.persist_points += 1;
        if self.trip_at == Some(self.persist_points) {
            self.trip_at = None;
            return Err(Crashed);
        }
        self.pm.persist(ptr, len);
        Ok(())
    }

    /// Atomically sets the durable root pointer — one persist point.
    pub fn persist_root(&mut self, v: u64) -> Result<(), Crashed> {
        self.persist_points += 1;
        if self.trip_at == Some(self.persist_points) {
            self.trip_at = None;
            return Err(Crashed);
        }
        self.pm.set_root(v);
        Ok(())
    }

    /// Simulated power failure: each unfenced dirty line independently
    /// survives or reverts (see [`PmArena::crash`]).
    pub fn crash(&mut self, rng: &mut SimRng) -> usize {
        self.trip_at = None;
        self.pm.crash(rng)
    }

    /// Worst-case power failure: every unfenced line reverts.
    pub fn crash_losing_all(&mut self) -> usize {
        self.trip_at = None;
        self.pm.crash_losing_all()
    }

    /// The underlying arena (volatile stores, reads, alloc/free — none of
    /// these are persist points; durability only happens via `persist`).
    pub fn arena(&mut self) -> &mut PmArena {
        &mut self.pm
    }

    /// Durable root pointer.
    pub fn root(&self) -> u64 {
        self.pm.root()
    }

    /// Persistence-operation counters of the underlying arena.
    pub fn stats(&self) -> ArenaStats {
        self.pm.stats()
    }

    /// Returns and resets the underlying arena's counters.
    pub fn take_stats(&mut self) -> ArenaStats {
        self.pm.take_stats()
    }
}

/// A value storable in a [`Checkpoint`] or CAS word (one 64-bit word).
pub trait PlocValue: Copy {
    /// Encodes to the stored word.
    fn to_word(self) -> u64;
    /// Decodes from the stored word.
    fn from_word(w: u64) -> Self;
}

impl PlocValue for u64 {
    fn to_word(self) -> u64 {
        self
    }
    fn from_word(w: u64) -> u64 {
        w
    }
}

impl PlocValue for PmPtr {
    fn to_word(self) -> u64 {
        self.0
    }
    fn from_word(w: u64) -> PmPtr {
        PmPtr(w)
    }
}

/// Slot layout: `[seq][value][seq]`, 24 bytes. Two slots, 48 bytes total.
const CKPT_SLOT: usize = 24;
/// Total allocation of a checkpoint cell.
pub const CKPT_LEN: usize = 2 * CKPT_SLOT;

/// A detectable checkpoint: computes and persists a value at most once
/// per operation sequence number.
///
/// Sequence numbers must be strictly increasing across operations (0 is
/// reserved for "empty"). The cell ping-pongs between two slots so the
/// previous record stays intact while the new one is written; validity is
/// the seq sandwich — a torn slot shows mismatched copies and is ignored.
pub struct Checkpoint<T> {
    ptr: PmPtr,
    _marker: PhantomData<T>,
}

impl<T> fmt::Debug for Checkpoint<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Checkpoint")
            .field("ptr", &self.ptr)
            .finish()
    }
}

impl<T: PlocValue> Checkpoint<T> {
    /// Allocates a zeroed checkpoint cell. Returns `None` when the arena
    /// is exhausted. The allocation itself is not a persist point; the
    /// cell only matters once a record is persisted into it.
    pub fn alloc(heap: &mut PlocHeap) -> Option<Checkpoint<T>> {
        let ptr = heap.arena().alloc(CKPT_LEN)?;
        heap.arena().write(ptr, &[0u8; CKPT_LEN]);
        // Zero slots are durable from the start so a pre-first-op crash
        // cannot materialize garbage records.
        heap.arena().persist(ptr, CKPT_LEN);
        Some(Checkpoint {
            ptr,
            _marker: PhantomData,
        })
    }

    /// Rebinds to an existing cell after recovery.
    pub fn from_ptr(ptr: PmPtr) -> Checkpoint<T> {
        Checkpoint {
            ptr,
            _marker: PhantomData,
        }
    }

    /// The cell's location (stored in structure metadata for recovery).
    pub fn ptr(&self) -> PmPtr {
        self.ptr
    }

    fn slot_ptr(&self, slot: usize) -> PmPtr {
        PmPtr(self.ptr.0 + (slot * CKPT_SLOT) as u64)
    }

    /// Reads a slot, returning `(seq, value)` if the sandwich is intact.
    fn read_slot(&self, heap: &mut PlocHeap, slot: usize) -> Option<(u64, u64)> {
        let p = self.slot_ptr(slot);
        let seq = heap.arena().read_u64(p);
        let value = heap.arena().read_u64(PmPtr(p.0 + 8));
        let seq2 = heap.arena().read_u64(PmPtr(p.0 + 16));
        (seq != 0 && seq == seq2).then_some((seq, value))
    }

    /// The highest valid `(seq, value)` record, if any.
    pub fn latest(&self, heap: &mut PlocHeap) -> Option<(u64, T)> {
        let a = self.read_slot(heap, 0);
        let b = self.read_slot(heap, 1);
        match (a, b) {
            (Some(x), Some(y)) => Some(if x.0 >= y.0 { x } else { y }),
            (Some(x), None) => Some(x),
            (None, Some(y)) => Some(y),
            (None, None) => None,
        }
        .map(|(s, v)| (s, T::from_word(v)))
    }

    /// The recorded value for exactly `op_seq`, if this operation already
    /// checkpointed (the replay-detection read).
    pub fn saved(&self, heap: &mut PlocHeap, op_seq: u64) -> Option<T> {
        self.latest(heap)
            .and_then(|(s, v)| (s == op_seq).then_some(v))
    }

    /// Runs `compute` at most once for `op_seq`: a replay returns the
    /// recorded value; a first execution records the value into the
    /// non-latest slot and persists it (one persist point) before
    /// returning.
    pub fn run(
        &self,
        heap: &mut PlocHeap,
        op_seq: u64,
        compute: impl FnOnce(&mut PlocHeap) -> T,
    ) -> Result<T, Crashed> {
        assert!(op_seq != 0, "op_seq 0 is reserved for empty slots");
        if let Some(v) = self.saved(heap, op_seq) {
            return Ok(v);
        }
        let v = compute(heap);
        self.record(heap, op_seq, v)?;
        Ok(v)
    }

    /// Persists `(op_seq, value)` into the inactive slot (one persist
    /// point). Used when the value is produced by surrounding code rather
    /// than a closure.
    pub fn record(&self, heap: &mut PlocHeap, op_seq: u64, value: T) -> Result<(), Crashed> {
        assert!(op_seq != 0, "op_seq 0 is reserved for empty slots");
        let latest_slot = match (self.read_slot(heap, 0), self.read_slot(heap, 1)) {
            (Some(x), Some(y)) => usize::from(y.0 > x.0),
            (Some(_), None) => 0,
            _ => 1,
        };
        let target = self.slot_ptr(1 - latest_slot);
        let arena = heap.arena();
        arena.write_u64(target, op_seq);
        arena.write_u64(PmPtr(target.0 + 8), value.to_word());
        arena.write_u64(PmPtr(target.0 + 16), op_seq);
        heap.persist(target, CKPT_SLOT)
    }
}

/// CAS memento states (0 = empty slot).
const CAS_PENDING: u64 = 1;
const CAS_DONE_OK: u64 = 2;
const CAS_DONE_FAIL: u64 = 3;

/// Memento layout: `[op_seq][state][new][old][target][op_seq2]`, 48 bytes.
pub const CAS_LEN: usize = 48;

/// A detectable compare-and-swap on a PM word.
///
/// The memento is persisted `PENDING` *before* the target word is
/// written; completion marks it `DONE_OK`/`DONE_FAIL` with the observed
/// old value. After a crash, [`DetectableCas::recover`] rolls a `PENDING`
/// memento forward (the target write is idempotent), and a replayed
/// `cas` with the same `op_seq` returns the recorded outcome without
/// touching the target — exactly-once by construction.
pub struct DetectableCas {
    ptr: PmPtr,
}

impl fmt::Debug for DetectableCas {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DetectableCas")
            .field("ptr", &self.ptr)
            .finish()
    }
}

/// Outcome of a detectable CAS: the value observed at the target. The
/// swap succeeded iff `observed == expected`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CasOutcome {
    /// Value the CAS observed (the previous word on success).
    pub observed: u64,
    /// Whether the swap was performed.
    pub swapped: bool,
}

impl DetectableCas {
    /// Allocates a zeroed memento slot (not itself a persist point beyond
    /// making the empty state durable).
    pub fn alloc(heap: &mut PlocHeap) -> Option<DetectableCas> {
        let ptr = heap.arena().alloc(CAS_LEN)?;
        heap.arena().write(ptr, &[0u8; CAS_LEN]);
        heap.arena().persist(ptr, CAS_LEN);
        Some(DetectableCas { ptr })
    }

    /// Rebinds to an existing memento after recovery.
    pub fn from_ptr(ptr: PmPtr) -> DetectableCas {
        DetectableCas { ptr }
    }

    /// The memento's location.
    pub fn ptr(&self) -> PmPtr {
        self.ptr
    }

    fn field(&self, i: usize) -> PmPtr {
        PmPtr(self.ptr.0 + (i * 8) as u64)
    }

    /// Reads the memento if its seq sandwich is intact:
    /// `(op_seq, state, new, old, target)`.
    fn read_valid(&self, heap: &mut PlocHeap) -> Option<(u64, u64, u64, u64, u64)> {
        let seq = heap.arena().read_u64(self.field(0));
        let state = heap.arena().read_u64(self.field(1));
        let new = heap.arena().read_u64(self.field(2));
        let old = heap.arena().read_u64(self.field(3));
        let target = heap.arena().read_u64(self.field(4));
        let seq2 = heap.arena().read_u64(self.field(5));
        (seq != 0 && seq == seq2).then_some((seq, state, new, old, target))
    }

    /// The recorded outcome for exactly `op_seq`, when that operation
    /// already reached `DONE`.
    pub fn saved(&self, heap: &mut PlocHeap, op_seq: u64) -> Option<CasOutcome> {
        match self.read_valid(heap) {
            Some((seq, state, _, old, _)) if seq == op_seq => match state {
                CAS_DONE_OK => Some(CasOutcome {
                    observed: old,
                    swapped: true,
                }),
                CAS_DONE_FAIL => Some(CasOutcome {
                    observed: old,
                    swapped: false,
                }),
                _ => None,
            },
            _ => None,
        }
    }

    /// Detectable `cas(target, expected, new)` for operation `op_seq`.
    ///
    /// Persist points: memento-PENDING, target word (successful swaps
    /// only), memento-DONE. A replay (same `op_seq`, memento `DONE`)
    /// performs none of them; a replay finding `PENDING` rolls the
    /// operation forward.
    pub fn cas(
        &self,
        heap: &mut PlocHeap,
        op_seq: u64,
        target: PmPtr,
        expected: u64,
        new: u64,
    ) -> Result<CasOutcome, Crashed> {
        assert!(op_seq != 0, "op_seq 0 is reserved for empty mementos");
        if let Some(done) = self.saved(heap, op_seq) {
            return Ok(done);
        }
        if let Some((seq, state, new_w, old, tgt)) = self.read_valid(heap) {
            if seq == op_seq && state == CAS_PENDING {
                // Crash landed between memento-persist and DONE: the
                // decision is already durable; roll it forward.
                debug_assert_eq!(tgt, target.0, "replayed CAS against a different target");
                return self.complete(heap, old == expected, new_w, old, PmPtr(tgt));
            }
        }
        // Fresh execution: decide, then persist the decision before
        // touching the target.
        let cur = heap.arena().read_u64(target);
        let arena = heap.arena();
        arena.write_u64(self.field(0), op_seq);
        arena.write_u64(self.field(1), CAS_PENDING);
        arena.write_u64(self.field(2), new);
        arena.write_u64(self.field(3), cur);
        arena.write_u64(self.field(4), target.0);
        arena.write_u64(self.field(5), op_seq);
        heap.persist(self.ptr, CAS_LEN)?;
        self.complete(heap, cur == expected, new, cur, target)
    }

    /// Executes the durable half of a decided CAS: target write (on
    /// success) and the DONE mark.
    fn complete(
        &self,
        heap: &mut PlocHeap,
        swapped: bool,
        new: u64,
        old: u64,
        target: PmPtr,
    ) -> Result<CasOutcome, Crashed> {
        if swapped {
            heap.arena().write_u64(target, new);
            heap.persist(target, 8)?;
        }
        let state = if swapped { CAS_DONE_OK } else { CAS_DONE_FAIL };
        heap.arena().write_u64(self.field(1), state);
        heap.persist(self.ptr, CAS_LEN)?;
        Ok(CasOutcome {
            observed: old,
            swapped,
        })
    }

    /// Recovery hook: rolls a `PENDING` memento forward so the structure
    /// is consistent before new operations run. Returns `true` when a
    /// pending operation was completed.
    pub fn recover(&self, heap: &mut PlocHeap) -> Result<bool, Crashed> {
        if let Some((_, state, new, old, tgt)) = self.read_valid(heap) {
            if state == CAS_PENDING {
                // `old` was read from the pre-CAS target; the swap
                // proceeds iff it was decided to (a pending memento always
                // re-derives the same decision from the recorded old/new).
                let target = PmPtr(tgt);
                let cur = heap.arena().read_u64(target);
                // Idempotent: the target holds either `old` (write lost)
                // or `new` (write survived); rewrite unconditionally.
                debug_assert!(cur == old || cur == new, "foreign write under pending CAS");
                self.complete(heap, true, new, old, target)?;
                return Ok(true);
            }
        }
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_runs_once_per_seq_and_replays_the_record() {
        let mut heap = PlocHeap::new(4096);
        let ck: Checkpoint<u64> = Checkpoint::alloc(&mut heap).unwrap();
        let mut runs = 0;
        let v = ck
            .run(&mut heap, 1, |_| {
                runs += 1;
                42
            })
            .unwrap();
        assert_eq!(v, 42);
        let v = ck
            .run(&mut heap, 1, |_| {
                runs += 1;
                99
            })
            .unwrap();
        assert_eq!(v, 42, "replay must return the recorded value");
        assert_eq!(runs, 1, "compute must not re-run for the same op_seq");
        let v = ck.run(&mut heap, 2, |_| 7).unwrap();
        assert_eq!(v, 7);
        assert_eq!(ck.latest(&mut heap), Some((2, 7)));
        assert_eq!(ck.saved(&mut heap, 1), None, "older record was displaced");
    }

    #[test]
    fn checkpoint_survives_worst_case_crash_after_persist() {
        let mut heap = PlocHeap::new(4096);
        let ck: Checkpoint<u64> = Checkpoint::alloc(&mut heap).unwrap();
        ck.record(&mut heap, 5, 1234).unwrap();
        heap.crash_losing_all();
        let ck: Checkpoint<u64> = Checkpoint::from_ptr(ck.ptr());
        assert_eq!(ck.saved(&mut heap, 5), Some(1234));
    }

    #[test]
    fn tripped_checkpoint_leaves_no_valid_record() {
        let mut heap = PlocHeap::new(4096);
        let ck: Checkpoint<u64> = Checkpoint::alloc(&mut heap).unwrap();
        heap.arm(1);
        assert_eq!(ck.record(&mut heap, 9, 1), Err(Crashed));
        heap.crash_losing_all();
        assert_eq!(ck.saved(&mut heap, 9), None, "unpersisted record leaked");
        // The op replays cleanly afterwards.
        ck.record(&mut heap, 9, 1).unwrap();
        assert_eq!(ck.saved(&mut heap, 9), Some(1));
    }

    #[test]
    fn cas_swaps_once_and_replays_the_outcome() {
        let mut heap = PlocHeap::new(4096);
        let word = heap.arena().alloc(8).unwrap();
        heap.arena().write_u64(word, 10);
        heap.arena().persist(word, 8);
        let cas = DetectableCas::alloc(&mut heap).unwrap();
        let out = cas.cas(&mut heap, 1, word, 10, 20).unwrap();
        assert!(out.swapped);
        assert_eq!(out.observed, 10);
        assert_eq!(heap.arena().read_u64(word), 20);
        // Replay: same outcome, no second swap.
        let out = cas.cas(&mut heap, 1, word, 10, 20).unwrap();
        assert!(out.swapped);
        assert_eq!(heap.arena().read_u64(word), 20);
        // A new op with a stale expectation fails and records the failure.
        let out = cas.cas(&mut heap, 2, word, 10, 30).unwrap();
        assert!(!out.swapped);
        assert_eq!(out.observed, 20);
        assert!(!cas.saved(&mut heap, 2).unwrap().swapped);
    }

    #[test]
    fn cas_crash_at_every_persist_point_is_exactly_once() {
        // A successful CAS has 3 persist points; kill at each, recover,
        // replay, and the target must end at `new` with the recorded
        // outcome intact.
        for point in 1..=3u64 {
            for lose_all in [true, false] {
                let mut heap = PlocHeap::new(4096);
                let word = heap.arena().alloc(8).unwrap();
                heap.arena().write_u64(word, 7);
                heap.arena().persist(word, 8);
                let cas = DetectableCas::alloc(&mut heap).unwrap();
                heap.arm(point);
                assert_eq!(cas.cas(&mut heap, 3, word, 7, 8), Err(Crashed), "{point}");
                if lose_all {
                    heap.crash_losing_all();
                } else {
                    heap.crash(&mut SimRng::seed(point));
                }
                let cas = DetectableCas::from_ptr(cas.ptr());
                cas.recover(&mut heap).unwrap();
                let out = cas.cas(&mut heap, 3, word, 7, 8).unwrap();
                assert!(out.swapped, "point {point}");
                assert_eq!(out.observed, 7, "point {point}");
                assert_eq!(heap.arena().read_u64(word), 8, "point {point}");
                // And the replay left a durable DONE record.
                heap.crash_losing_all();
                assert_eq!(
                    cas.saved(&mut heap, 3),
                    Some(CasOutcome {
                        observed: 7,
                        swapped: true
                    }),
                    "point {point}"
                );
            }
        }
    }

    #[test]
    fn persist_points_count_and_arming_is_one_shot() {
        let mut heap = PlocHeap::new(4096);
        let p = heap.arena().alloc(8).unwrap();
        heap.arena().write_u64(p, 1);
        assert!(heap.persist(p, 8).is_ok());
        assert_eq!(heap.persist_points(), 1);
        heap.arm(2);
        assert!(heap.persist(p, 8).is_ok());
        assert_eq!(heap.persist(p, 8), Err(Crashed));
        assert!(heap.persist(p, 8).is_ok(), "trip disarms after firing");
        assert_eq!(heap.persist_points(), 4);
    }
}
