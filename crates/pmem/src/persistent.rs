//! A crash-consistent key-value store: index structure + WAL + checkpoint.
//!
//! Every mutation is first appended to the [`Wal`] (durably) and then
//! applied to the in-memory index. A checkpoint serializes the full index
//! into the arena and truncates the log. Recovery loads the last durable
//! checkpoint and replays the log over it. This is the redo discipline the
//! paper's server applications rely on, and the machinery PMNet's own
//! in-network redo log cooperates with after a failure (Section IV-E:
//! the server's last applied sequence number must itself be recoverable —
//! it is stored through this same path).

use std::fmt;

use pmnet_sim::SimRng;

use crate::kv::{KvStore, OpStats};
use crate::{ArenaStats, PmArena, PmPtr, Wal};

/// A mutating operation on a [`PersistentKv`] (also its WAL record).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvOp {
    /// Insert or replace a key.
    Put {
        /// Key bytes.
        key: Vec<u8>,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// Delete a key.
    Del {
        /// Key bytes.
        key: Vec<u8>,
    },
}

impl KvOp {
    /// Serializes to a WAL record.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            KvOp::Put { key, value } => {
                let mut v = Vec::with_capacity(1 + 4 + key.len() + value.len());
                v.push(1);
                v.extend_from_slice(&(key.len() as u32).to_le_bytes());
                v.extend_from_slice(key);
                v.extend_from_slice(value);
                v
            }
            KvOp::Del { key } => {
                let mut v = Vec::with_capacity(1 + 4 + key.len());
                v.push(2);
                v.extend_from_slice(&(key.len() as u32).to_le_bytes());
                v.extend_from_slice(key);
                v
            }
        }
    }

    /// Parses a WAL record.
    ///
    /// Returns `None` for malformed input.
    pub fn decode(bytes: &[u8]) -> Option<KvOp> {
        if bytes.len() < 5 {
            return None;
        }
        let tag = bytes[0];
        let klen = u32::from_le_bytes(bytes[1..5].try_into().ok()?) as usize;
        if bytes.len() < 5 + klen {
            return None;
        }
        let key = bytes[5..5 + klen].to_vec();
        match tag {
            1 => Some(KvOp::Put {
                key,
                value: bytes[5 + klen..].to_vec(),
            }),
            2 if bytes.len() == 5 + klen => Some(KvOp::Del { key }),
            _ => None,
        }
    }
}

/// Layout of the durable root word: `(checkpoint_ptr, wal_ptr)` packed into
/// two u64 halves is impossible in one word, so the root points at a small
/// superblock holding both.
const SUPERBLOCK_LEN: usize = 32;

/// A crash-consistent KV store over a [`PmArena`].
pub struct PersistentKv {
    arena: PmArena,
    wal: Wal,
    index: Box<dyn KvStore>,
    checkpoint_ptr: PmPtr,
    checkpoint_cap: usize,
    ops_since_checkpoint: u64,
    applied: u64,
}

impl fmt::Debug for PersistentKv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PersistentKv")
            .field("index", &self.index.name())
            .field("len", &self.index.len())
            .field("wal_used", &self.wal.used())
            .finish()
    }
}

impl PersistentKv {
    /// Creates a fresh store with the given index structure, arena size and
    /// WAL/checkpoint region sizes.
    ///
    /// # Panics
    ///
    /// Panics if the arena cannot hold the regions.
    pub fn create(
        index: Box<dyn KvStore>,
        arena_bytes: usize,
        wal_bytes: usize,
        checkpoint_bytes: usize,
    ) -> PersistentKv {
        let mut arena = PmArena::new(arena_bytes);
        let superblock = arena.alloc(SUPERBLOCK_LEN).expect("arena too small");
        let wal = Wal::create(&mut arena, wal_bytes).expect("arena too small for WAL");
        let checkpoint_ptr = arena
            .alloc(checkpoint_bytes)
            .expect("arena too small for checkpoint");
        // Empty checkpoint: length 0, durable.
        arena.write(checkpoint_ptr, &0u64.to_le_bytes());
        arena.persist(checkpoint_ptr, 8);
        // Superblock: wal region, wal cap, checkpoint region, checkpoint cap.
        arena.write_u64(superblock, wal.region().0);
        arena.write_u64(PmPtr(superblock.0 + 8), wal_bytes as u64);
        arena.write_u64(PmPtr(superblock.0 + 16), checkpoint_ptr.0);
        arena.write_u64(PmPtr(superblock.0 + 24), checkpoint_bytes as u64);
        arena.persist(superblock, SUPERBLOCK_LEN);
        arena.set_root(superblock.0);
        PersistentKv {
            arena,
            wal,
            index,
            checkpoint_ptr,
            checkpoint_cap: checkpoint_bytes,
            ops_since_checkpoint: 0,
            applied: 0,
        }
    }

    /// A convenient default sizing for tests and workloads.
    pub fn with_defaults(index: Box<dyn KvStore>) -> PersistentKv {
        PersistentKv::create(index, 64 << 20, 16 << 20, 32 << 20)
    }

    /// The index structure's paper name.
    pub fn index_name(&self) -> &'static str {
        self.index.name()
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.index.len() == 0
    }

    /// Total mutations applied since creation/recovery.
    pub fn applied_ops(&self) -> u64 {
        self.applied
    }

    /// Reads a key (no durability interaction).
    pub fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        self.index.get(key)
    }

    /// Applies a mutation durably: WAL append (flush+fence) then index
    /// update. Returns the previous value, if any.
    ///
    /// # Panics
    ///
    /// Panics if the WAL fills and an automatic checkpoint cannot free it
    /// (store misconfiguration).
    pub fn apply(&mut self, op: &KvOp) -> Option<Vec<u8>> {
        let record = op.encode();
        if !self.wal.append(&mut self.arena, &record) {
            self.checkpoint();
            assert!(
                self.wal.append(&mut self.arena, &record),
                "WAL cannot hold a single record"
            );
        }
        self.ops_since_checkpoint += 1;
        self.applied += 1;
        match op {
            KvOp::Put { key, value } => self.index.insert(key, value),
            KvOp::Del { key } => self.index.remove(key),
        }
    }

    /// Serializes the full index into the checkpoint region and truncates
    /// the WAL.
    ///
    /// # Panics
    ///
    /// Panics if the serialized index exceeds the checkpoint region.
    pub fn checkpoint(&mut self) {
        let mut blob = Vec::new();
        self.index.for_each(&mut |k, v| {
            blob.extend_from_slice(&(k.len() as u32).to_le_bytes());
            blob.extend_from_slice(&(v.len() as u32).to_le_bytes());
            blob.extend_from_slice(k);
            blob.extend_from_slice(v);
        });
        assert!(
            blob.len() + 8 <= self.checkpoint_cap,
            "checkpoint region too small: need {}",
            blob.len() + 8
        );
        // Write payload first, then the length word, so a torn checkpoint
        // is never exposed (the old length keeps pointing at old data only
        // if lengths were equal — we accept the standard double-buffer
        // simplification of writing length last with a fence between).
        let data_ptr = PmPtr(self.checkpoint_ptr.0 + 8);
        if !blob.is_empty() {
            self.arena.write(data_ptr, &blob);
            self.arena.persist(data_ptr, blob.len());
        }
        self.arena
            .write(self.checkpoint_ptr, &(blob.len() as u64).to_le_bytes());
        self.arena.persist(self.checkpoint_ptr, 8);
        self.wal.reset(&mut self.arena);
        self.ops_since_checkpoint = 0;
    }

    /// Mutations applied since the last checkpoint.
    pub fn ops_since_checkpoint(&self) -> u64 {
        self.ops_since_checkpoint
    }

    /// Simulates a power failure, consuming the store and returning the
    /// surviving arena (as found on the media).
    pub fn crash(mut self, rng: &mut SimRng) -> PmArena {
        self.arena.crash(rng);
        self.arena
    }

    /// Recovers a store from a crashed arena: loads the last checkpoint
    /// into a fresh index and replays the WAL.
    ///
    /// # Panics
    ///
    /// Panics if the arena's superblock is unreadable (which fenced writes
    /// make impossible in this model).
    pub fn recover(mut arena: PmArena, mut index: Box<dyn KvStore>) -> PersistentKv {
        let superblock = PmPtr(arena.root());
        assert!(
            !superblock.is_null(),
            "no superblock: arena was never initialized"
        );
        let wal_region = PmPtr(arena.read_u64(superblock));
        let wal_cap = arena.read_u64(PmPtr(superblock.0 + 8)) as usize;
        let checkpoint_ptr = PmPtr(arena.read_u64(PmPtr(superblock.0 + 16)));
        let checkpoint_cap = arena.read_u64(PmPtr(superblock.0 + 24)) as usize;
        // Load checkpoint.
        let blob_len = arena.read_u64(checkpoint_ptr) as usize;
        let blob = arena.read(PmPtr(checkpoint_ptr.0 + 8), blob_len).to_vec();
        let mut off = 0;
        while off + 8 <= blob.len() {
            let klen = u32::from_le_bytes(blob[off..off + 4].try_into().expect("4 bytes")) as usize;
            let vlen =
                u32::from_le_bytes(blob[off + 4..off + 8].try_into().expect("4 bytes")) as usize;
            off += 8;
            let key = &blob[off..off + klen];
            off += klen;
            let value = &blob[off..off + vlen];
            off += vlen;
            index.insert(key, value);
        }
        // Replay WAL.
        let (wal, records) = Wal::recover(&mut arena, wal_region, wal_cap);
        let mut applied = 0;
        for r in &records {
            let op = KvOp::decode(r).expect("WAL record passed CRC but failed to parse");
            match op {
                KvOp::Put { key, value } => {
                    index.insert(&key, &value);
                }
                KvOp::Del { key } => {
                    index.remove(&key);
                }
            }
            applied += 1;
        }
        PersistentKv {
            arena,
            wal,
            index,
            checkpoint_ptr,
            checkpoint_cap,
            ops_since_checkpoint: applied,
            applied,
        }
    }

    /// The index's work counters since last taken (for service-time
    /// modeling).
    pub fn take_index_stats(&mut self) -> OpStats {
        self.index.take_stats()
    }

    /// The arena's persistence counters since last taken.
    pub fn take_arena_stats(&mut self) -> ArenaStats {
        self.arena.take_stats()
    }

    /// Visits every pair (for assertions in tests).
    pub fn for_each(&self, f: &mut dyn FnMut(&[u8], &[u8])) {
        self.index.for_each(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::{all_stores, store_by_name};
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn contents(kv: &PersistentKv) -> BTreeMap<Vec<u8>, Vec<u8>> {
        let mut m = BTreeMap::new();
        kv.for_each(&mut |k, v| {
            m.insert(k.to_vec(), v.to_vec());
        });
        m
    }

    #[test]
    fn op_encoding_round_trips() {
        let ops = [
            KvOp::Put {
                key: b"k".to_vec(),
                value: b"value".to_vec(),
            },
            KvOp::Put {
                key: vec![],
                value: vec![],
            },
            KvOp::Del {
                key: b"gone".to_vec(),
            },
        ];
        for op in &ops {
            assert_eq!(KvOp::decode(&op.encode()).as_ref(), Some(op));
        }
        assert_eq!(KvOp::decode(b""), None);
        assert_eq!(KvOp::decode(&[9, 0, 0, 0, 0]), None);
    }

    #[test]
    fn crash_and_recover_preserves_every_applied_op() {
        let mut rng = SimRng::seed(21);
        for name in ["btree", "ctree", "rbtree", "hashmap", "skiplist"] {
            let mut kv = PersistentKv::with_defaults(store_by_name(name, 1));
            let mut model = BTreeMap::new();
            for i in 0..200u32 {
                let key = (i % 50).to_be_bytes().to_vec();
                if i % 7 == 3 {
                    kv.apply(&KvOp::Del { key: key.clone() });
                    model.remove(&key);
                } else {
                    let value = i.to_le_bytes().to_vec();
                    kv.apply(&KvOp::Put {
                        key: key.clone(),
                        value: value.clone(),
                    });
                    model.insert(key, value);
                }
                if i == 100 {
                    kv.checkpoint();
                }
            }
            let arena = kv.crash(&mut rng);
            let recovered = PersistentKv::recover(arena, store_by_name(name, 1));
            assert_eq!(contents(&recovered), model, "{name}");
        }
    }

    #[test]
    fn recovery_with_no_checkpoint_replays_full_log() {
        let mut kv = PersistentKv::with_defaults(store_by_name("hashmap", 0));
        for i in 0..50u8 {
            kv.apply(&KvOp::Put {
                key: vec![i],
                value: vec![i, i],
            });
        }
        let arena = kv.crash(&mut SimRng::seed(5));
        let r = PersistentKv::recover(arena, store_by_name("hashmap", 0));
        assert_eq!(r.len(), 50);
        assert_eq!(r.applied_ops(), 50);
    }

    #[test]
    fn checkpoint_truncates_wal_and_survives() {
        let mut kv = PersistentKv::with_defaults(store_by_name("btree", 0));
        for i in 0..20u8 {
            kv.apply(&KvOp::Put {
                key: vec![i],
                value: vec![i],
            });
        }
        kv.checkpoint();
        assert_eq!(kv.ops_since_checkpoint(), 0);
        let arena = kv.crash(&mut SimRng::seed(9));
        let r = PersistentKv::recover(arena, store_by_name("btree", 0));
        assert_eq!(r.len(), 20);
        // Nothing replayed: it all came from the checkpoint.
        assert_eq!(r.applied_ops(), 0);
    }

    #[test]
    fn wal_fills_trigger_automatic_checkpoint() {
        let mut kv = PersistentKv::create(store_by_name("hashmap", 0), 1 << 20, 4096, 256 << 10);
        for i in 0..200u32 {
            kv.apply(&KvOp::Put {
                key: i.to_be_bytes().to_vec(),
                value: vec![0; 64],
            });
        }
        assert_eq!(kv.len(), 200);
        assert!(
            kv.ops_since_checkpoint() < 200,
            "a checkpoint must have fired"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn random_crash_points_always_recover_consistently(
            ops in prop::collection::vec(
                (prop::collection::vec(0u8..6, 1..3), prop::option::of(prop::collection::vec(any::<u8>(), 0..12))),
                1..60
            ),
            crash_after in 0usize..60,
            seed in 0u64..1000,
        ) {
            let mut rng = SimRng::seed(seed);
            let mut kv = PersistentKv::with_defaults(store_by_name("btree", 0));
            let mut model = BTreeMap::new();
            for (i, (key, maybe_value)) in ops.iter().enumerate() {
                if i == crash_after {
                    break;
                }
                match maybe_value {
                    Some(v) => {
                        kv.apply(&KvOp::Put { key: key.clone(), value: v.clone() });
                        model.insert(key.clone(), v.clone());
                    }
                    None => {
                        kv.apply(&KvOp::Del { key: key.clone() });
                        model.remove(key);
                    }
                }
            }
            let arena = kv.crash(&mut rng);
            let recovered = PersistentKv::recover(arena, store_by_name("btree", 0));
            // Every acknowledged (i.e. applied) op must be present after
            // recovery: apply() fences before returning.
            prop_assert_eq!(contents(&recovered), model);
        }
    }

    #[test]
    fn all_index_kinds_take_stats_through_the_wrapper() {
        for index in all_stores(3) {
            let mut kv = PersistentKv::with_defaults(index);
            kv.apply(&KvOp::Put {
                key: b"a".to_vec(),
                value: b"b".to_vec(),
            });
            let idx = kv.take_index_stats();
            let arena = kv.take_arena_stats();
            assert!(idx.bytes_moved > 0);
            assert!(arena.fences > 0, "WAL append must fence");
        }
    }
}
