//! Crash-point sweep over the detectable KV structures (Memento
//! §6.1-style stress): for a recorded operation trace, kill the heap at
//! **every** persist point of every op — in both the worst-case
//! (`crash_losing_all`) and the torn-line (`crash(rng)`) failure modes —
//! recover, replay the interrupted op with its original `op_seq`, and
//! require the result, length, and content digest to be identical to the
//! uninterrupted reference run. Exactly-once, at 100% persist-point
//! coverage: the sweep also proves the recorded point count is the true
//! total by arming one past it and requiring the op to complete.

use pmnet_pmem::kv::{DetectableHashMap, DetectableSkipList};
use pmnet_pmem::{Crashed, PlocHeap};
use pmnet_sim::SimRng;

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>, Vec<u8>),
    Remove(Vec<u8>),
}

/// A trace that exercises every code path: fresh inserts (enough to grow
/// the hash map past its ×2 load factor), replacements, removes of
/// present and absent keys, and re-inserts after removal.
fn trace() -> Vec<Op> {
    let mut ops = Vec::new();
    for i in 0u32..14 {
        ops.push(Op::Insert(
            format!("key-{i:02}").into_bytes(),
            format!("v{i}").into_bytes(),
        ));
    }
    ops.push(Op::Insert(b"key-03".to_vec(), b"replaced".to_vec()));
    ops.push(Op::Remove(b"key-07".to_vec()));
    ops.push(Op::Remove(b"key-07".to_vec())); // absent
    ops.push(Op::Remove(b"no-such-key".to_vec())); // never present
    ops.push(Op::Insert(b"key-07".to_vec(), b"back".to_vec()));
    ops.push(Op::Insert(b"key-00".to_vec(), b"r2".to_vec()));
    ops.push(Op::Remove(b"key-13".to_vec()));
    ops
}

trait Sweepable: Sized {
    const NAME: &'static str;
    fn create(heap: &mut PlocHeap) -> Self;
    fn open(heap: &mut PlocHeap) -> Self;
    fn apply(&mut self, heap: &mut PlocHeap, op_seq: u64, op: &Op) -> Result<bool, Crashed>;
    fn digest(&self, heap: &mut PlocHeap) -> u64;
    fn len(&self) -> usize;
}

impl Sweepable for DetectableHashMap {
    const NAME: &'static str = "hashmap";
    fn create(heap: &mut PlocHeap) -> Self {
        DetectableHashMap::create(heap).expect("create is not swept")
    }
    fn open(heap: &mut PlocHeap) -> Self {
        DetectableHashMap::open(heap).expect("recovery is not swept")
    }
    fn apply(&mut self, heap: &mut PlocHeap, op_seq: u64, op: &Op) -> Result<bool, Crashed> {
        match op {
            Op::Insert(k, v) => self.insert(heap, op_seq, k, v),
            Op::Remove(k) => self.remove(heap, op_seq, k),
        }
    }
    fn digest(&self, heap: &mut PlocHeap) -> u64 {
        DetectableHashMap::digest(self, heap)
    }
    fn len(&self) -> usize {
        DetectableHashMap::len(self)
    }
}

impl Sweepable for DetectableSkipList {
    const NAME: &'static str = "skiplist";
    fn create(heap: &mut PlocHeap) -> Self {
        DetectableSkipList::create(heap, 77).expect("create is not swept")
    }
    fn open(heap: &mut PlocHeap) -> Self {
        DetectableSkipList::open(heap, 77).expect("recovery is not swept")
    }
    fn apply(&mut self, heap: &mut PlocHeap, op_seq: u64, op: &Op) -> Result<bool, Crashed> {
        match op {
            Op::Insert(k, v) => self.insert(heap, op_seq, k, v),
            Op::Remove(k) => self.remove(heap, op_seq, k),
        }
    }
    fn digest(&self, heap: &mut PlocHeap) -> u64 {
        DetectableSkipList::digest(self, heap)
    }
    fn len(&self) -> usize {
        DetectableSkipList::len(self)
    }
}

/// Reference run: per-op persist-point counts, results, digests, lengths.
struct Reference {
    points: Vec<u64>,
    results: Vec<bool>,
    digests: Vec<u64>,
    lens: Vec<usize>,
}

fn reference<S: Sweepable>(ops: &[Op]) -> Reference {
    let mut heap = PlocHeap::new(1 << 22);
    let mut s = S::create(&mut heap);
    let mut r = Reference {
        points: Vec::new(),
        results: Vec::new(),
        digests: Vec::new(),
        lens: Vec::new(),
    };
    for (i, op) in ops.iter().enumerate() {
        let before = heap.persist_points();
        let res = s.apply(&mut heap, i as u64 + 1, op).expect("unarmed run");
        r.points.push(heap.persist_points() - before);
        r.results.push(res);
        r.digests.push(s.digest(&mut heap));
        r.lens.push(s.len());
    }
    r
}

/// Replays `ops[..i]` cleanly on a fresh heap, returning the structure.
fn prefix<S: Sweepable>(heap: &mut PlocHeap, ops: &[Op], i: usize) -> S {
    let mut s = S::create(heap);
    for (j, op) in ops.iter().take(i).enumerate() {
        s.apply(heap, j as u64 + 1, op)
            .expect("prefix is not swept");
    }
    s
}

fn sweep<S: Sweepable>(min_max_op_points: u64) -> (u64, u64) {
    let ops = trace();
    let r = reference::<S>(&ops);
    assert!(
        r.points.iter().any(|&p| p >= min_max_op_points),
        "{}: trace never exercised its widest op shape",
        S::NAME
    );
    let mut crash_points = 0u64;
    let mut cases = 0u64;
    for (i, op) in ops.iter().enumerate() {
        let op_seq = i as u64 + 1;
        for point in 1..=r.points[i] {
            crash_points += 1;
            for lose_all in [true, false] {
                cases += 1;
                let mut heap = PlocHeap::new(1 << 22);
                let mut s = prefix::<S>(&mut heap, &ops, i);
                heap.arm(point);
                assert_eq!(
                    s.apply(&mut heap, op_seq, op),
                    Err(Crashed),
                    "{}: op {i} point {point} did not trip",
                    S::NAME
                );
                if lose_all {
                    heap.crash_losing_all();
                } else {
                    heap.crash(&mut SimRng::seed(op_seq * 1000 + point));
                }
                drop(s);
                let mut s = S::open(&mut heap);
                // Replay the interrupted op: exactly-once, same outcome.
                let res = s
                    .apply(&mut heap, op_seq, op)
                    .unwrap_or_else(|_| panic!("{}: replay of op {i} crashed unarmed", S::NAME));
                let ctx = format!("{}: op {i} point {point} lose_all={lose_all}", S::NAME);
                assert_eq!(res, r.results[i], "{ctx}: replay result diverged");
                assert_eq!(s.len(), r.lens[i], "{ctx}: length diverged");
                assert_eq!(s.digest(&mut heap), r.digests[i], "{ctx}: digest diverged");
                // A duplicate resend after completion is inert.
                let res2 = s.apply(&mut heap, op_seq, op).expect("resend");
                assert_eq!(res2, r.results[i], "{ctx}: resend result diverged");
                assert_eq!(s.digest(&mut heap), r.digests[i], "{ctx}: resend mutated");
            }
        }
        // Coverage proof: arming one past the op's recorded total must
        // not fire — the op completes and the trip carries to the next op.
        let mut heap = PlocHeap::new(1 << 22);
        let mut s = prefix::<S>(&mut heap, &ops, i);
        heap.arm(r.points[i] + 1);
        let res = s
            .apply(&mut heap, op_seq, op)
            .expect("one-past-the-end arm fired inside the op");
        heap.disarm();
        assert_eq!(res, r.results[i]);
        assert_eq!(s.digest(&mut heap), r.digests[i]);
    }
    (crash_points, cases)
}

#[test]
fn hashmap_survives_a_kill_at_every_persist_point() {
    // Growth (~13 node copies + array + root block + root swap) plus
    // 5-point inserts across the trace: a real sweep, not a smoke test.
    let (points, cases) = sweep::<DetectableHashMap>(10);
    assert!(points >= 80, "only {points} persist points swept");
    assert!(cases == points * 2);
}

#[test]
fn skiplist_survives_a_kill_at_every_persist_point() {
    let (points, cases) = sweep::<DetectableSkipList>(5);
    assert!(points >= 70, "only {points} persist points swept");
    assert!(cases == points * 2);
}
