//! Property tests for the PM arena's crash semantics: fenced data always
//! survives, every line is atomic (pre- or post-state, never torn), and
//! the WAL-over-arena discipline recovers a consistent prefix.

use pmnet_pmem::{PmArena, PmPtr, Wal, LINE};
use pmnet_sim::SimRng;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum ArenaOp {
    /// Write `value` to slot `slot`.
    Write(u8, u64),
    /// Flush slot.
    Flush(u8),
    /// Fence.
    Fence,
}

fn arena_op() -> impl Strategy<Value = ArenaOp> {
    prop_oneof![
        (0u8..8, any::<u64>()).prop_map(|(s, v)| ArenaOp::Write(s, v)),
        (0u8..8).prop_map(ArenaOp::Flush),
        Just(ArenaOp::Fence),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// After any op sequence and a random crash: every slot holds either
    /// its last durable (fenced) value or any later value written to it —
    /// lines are atomic, so no third state exists.
    #[test]
    fn crash_leaves_each_line_in_a_written_state(
        ops in prop::collection::vec(arena_op(), 0..60),
        seed in any::<u64>(),
    ) {
        let mut arena = PmArena::new(8 * LINE + 4096);
        // One slot per cache line so slots fail independently.
        let slots: Vec<PmPtr> = (0..8)
            .map(|_| arena.alloc(LINE).expect("fits"))
            .collect();
        // Initialize all slots durably to 0.
        for &p in &slots {
            arena.write_u64(p, 0);
        }
        for &p in &slots {
            arena.flush(p, 8);
        }
        arena.fence();

        // Track, per slot, the last fenced value and all values written
        // since (any of which a crash may surface, including none).
        let mut durable = [0u64; 8];
        let mut since_fence: Vec<Vec<u64>> = vec![Vec::new(); 8];
        let mut flushed: [bool; 8] = [false; 8];
        let mut written: [Option<u64>; 8] = [None; 8];
        for op in &ops {
            match op {
                ArenaOp::Write(s, v) => {
                    let s = *s as usize;
                    arena.write_u64(slots[s], *v);
                    since_fence[s].push(*v);
                    written[s] = Some(*v);
                    flushed[s] = false;
                }
                ArenaOp::Flush(s) => {
                    let s = *s as usize;
                    if written[s].is_some() {
                        arena.flush(slots[s], 8);
                        flushed[s] = true;
                    }
                }
                ArenaOp::Fence => {
                    arena.fence();
                    for s in 0..8 {
                        if flushed[s] {
                            if let Some(v) = written[s] {
                                durable[s] = v;
                            }
                            since_fence[s].clear();
                            written[s] = None;
                            flushed[s] = false;
                        }
                    }
                }
            }
        }

        let mut rng = SimRng::seed(seed);
        arena.crash(&mut rng);
        for s in 0..8 {
            let v = arena.read_u64(slots[s]);
            let ok = v == durable[s] || since_fence[s].contains(&v);
            prop_assert!(
                ok,
                "slot {} holds {} — neither durable {} nor any of {:?}",
                s, v, durable[s], since_fence[s]
            );
        }
    }

    /// WAL recovery after a crash yields exactly the appended records (all
    /// appends are fenced), in order, regardless of which stray lines the
    /// crash kept.
    #[test]
    fn wal_recovers_exact_appended_prefix(
        records in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..40), 0..25),
        seed in any::<u64>(),
    ) {
        let mut arena = PmArena::new(64 << 10);
        let mut wal = Wal::create(&mut arena, 32 << 10).expect("fits");
        for r in &records {
            assert!(wal.append(&mut arena, r));
        }
        let mut rng = SimRng::seed(seed);
        arena.crash(&mut rng);
        let (_, recovered) = Wal::recover(&mut arena, wal.region(), wal.capacity());
        prop_assert_eq!(recovered, records);
    }
}
