//! Design-choice ablations from Sections V-A and VII.
//!
//! 1. Eq. 1/2 BDP arithmetic: log capacity and log-queue sizing at 10 and
//!    100 Gbps.
//! 2. Log-queue size sweep: an Eq.-2-sized SRAM queue keeps the pipeline
//!    at line rate; starving it forces bypasses (unacknowledged requests).
//! 3. PM write-latency sweep: PMNet's benefit survives much slower
//!    persistence media (the persist happens off the server's path).
//! 4. Log-capacity pressure: a full table degrades gracefully to the
//!    baseline (forward-without-ack), never stalling traffic.

use pmnet_bench::{banner, row, stress_point, us, Micro};
use pmnet_core::config::bdp;
use pmnet_core::system::DesignPoint;
use pmnet_core::SystemConfig;
use pmnet_sim::Dur;

fn main() {
    banner(
        "Section V-A / VII",
        "BDP sizing and design-choice ablations",
    );

    println!("\n[Eq. 1/2] bandwidth-delay products:");
    row(&["network".into(), "log capacity".into(), "log queue".into()]);
    for (name, bw) in [
        ("10 Gbps", 10_000_000_000u64),
        ("100 Gbps", 100_000_000_000),
    ] {
        row(&[
            name.into(),
            format!(
                "{:.1} Mbit",
                bdp::log_capacity_bits(Dur::micros(500), bw) as f64 / 1e6
            ),
            format!(
                "{:.1} kbit",
                bdp::log_queue_bits(Dur::nanos(100), bw) as f64 / 1e3
            ),
        ]);
    }

    println!("\n[ablation] log-queue size sweep (32 clients, 1000 B, 20 ms):");
    row(&[
        "queue bytes".into(),
        "Gbps".into(),
        "mean".into(),
        "p99".into(),
    ]);
    for queue in [256u64, 1024, 4096, 16_384] {
        let mut cfg = SystemConfig::default();
        cfg.device = cfg.device.with_log_queue_bytes(queue);
        let (gbps, mean, p99) = {
            // stress_point builds its own config; inline a variant here.
            let mut b = pmnet_core::system::SystemBuilder::new(DesignPoint::PmnetSwitch, cfg);
            for _ in 0..32 {
                b = b.client(Box::new(pmnet_core::system::MicroSource::updates(
                    usize::MAX >> 1,
                    1000,
                )));
            }
            let mut sys = b.warmup(20).build(31);
            for &c in &sys.clients.clone() {
                sys.world.start_node(c);
            }
            sys.world.run_until(pmnet_sim::Time::ZERO + Dur::millis(20));
            let m = sys.metrics();
            let wire = (1000 + 1 + 20 + 42) as f64;
            let gbps = m.completed as f64 * wire * 8.0 / 0.020 / 1e9;
            let mut lat = m.latency;
            if lat.is_empty() {
                (gbps, Dur::ZERO, Dur::ZERO)
            } else {
                let p = lat.percentile(0.99);
                (gbps, lat.mean(), p)
            }
        };
        row(&[queue.to_string(), format!("{gbps:.2}"), us(mean), us(p99)]);
    }

    println!("\n[ablation] device PM write-latency sweep (100 B updates):");
    row(&["PM write".into(), "PMNet mean".into(), "speedup".into()]);
    let base = Micro::new(DesignPoint::ClientServer).run(42).latency.mean();
    for write_ns in [273u64, 1000, 5000, 20_000] {
        let mut cfg = SystemConfig::default();
        cfg.device.pm = cfg.device.pm.with_write_latency(Dur::nanos(write_ns));
        let m = Micro {
            config: cfg,
            ..Micro::new(DesignPoint::PmnetSwitch)
        }
        .run(42);
        row(&[
            format!("{write_ns}ns"),
            us(m.latency.mean()),
            format!(
                "{:.2}x",
                base.as_nanos() as f64 / m.latency.mean().as_nanos() as f64
            ),
        ]);
    }

    println!("\n[ablation] log-capacity pressure (tiny table forces bypasses):");
    row(&["entries".into(), "mean".into(), "note".into()]);
    for entries in [4usize, 64, 65_536] {
        let mut cfg = SystemConfig::default();
        cfg.device = cfg.device.with_log_capacity(entries, 1 << 30);
        let m = Micro {
            clients: 8,
            requests: 500,
            warmup: 50,
            config: cfg,
            ..Micro::new(DesignPoint::PmnetSwitch)
        }
        .run(42);
        let note = if entries <= 64 {
            "bypasses fall back to server ACKs"
        } else {
            "ample capacity"
        };
        row(&[entries.to_string(), us(m.latency.mean()), note.into()]);
    }

    println!("\n[100 Gbps check] Eq. 2 queue keeps line rate at 100 Gbps:");
    let (gbps, mean, _) = stress_point(DesignPoint::PmnetSwitch, 16, 1000, Dur::millis(10), 3);
    println!(
        "  16 clients on 10 Gbps fabric: {gbps:.2} Gbps at mean {}",
        us(mean)
    );
}
