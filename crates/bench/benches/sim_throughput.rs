//! Simulator self-benchmark: event-list throughput, codec allocation
//! behaviour, and campaign wall-clock, emitted as `BENCH_sim.json`.
//!
//! Three measured regions:
//!
//! 1. **Event list** — steady-state schedule/pop churn through the timer
//!    wheel [`pmnet_sim::Engine`], against an in-file reimplementation of
//!    the binary-heap event list it replaced. Same workload, same process,
//!    same allocator, so the ratio is the heap→wheel speedup with
//!    machine noise cancelled out.
//! 2. **Codec** — encode/decode round trips of [`KvFrame`] inside
//!    [`PmnetHeader`] payloads, with allocations-per-frame from the
//!    counting allocator (the pooled zero-copy path should hold this near
//!    zero in steady state). A second loop pushes the same frames through
//!    the doorbell batch framing (`BatchBuilder`/`BatchFrames`) to price
//!    the coalesced wire format.
//! 3. **E2E** — wall-clock operations per second of the full simulated
//!    system (clients, switch device, server) at batch window 1 and 16,
//!    so a regression anywhere in the stack shows up even if the codec
//!    microbenchmark stays flat.
//! 4. **Campaign** — the lossy-recovery chaos campaign end to end
//!    (seed 77, the determinism-pinned workload), reporting wall-clock.
//! 5. **Fabric** — saturation throughput of the sharded chained-replica
//!    fabric at 1, 2 and 4 shards (simulated Gbps, so deterministic and
//!    gated inline rather than via `--check`): two replicated chains must
//!    hold near parity with the one unreplicated device they replace, and
//!    four must scale past it.
//! 6. **Lock fraction** — the paper's TPCC lock observation (Section
//!    III-C, ~13.7% of requests hit the locking primitive) run against
//!    the concurrent apply pool: a KV write mix with 13.7% hot-key
//!    contention, scored in deterministic simulated ops/sec at 1 vs 4
//!    apply threads, with an inline scaling gate.
//! 7. **Traffic** — the open-loop `pmnet-traffic` engine at 1.5x a
//!    probed saturation capacity with AIMD admission and the device-log
//!    spill policy engaged. Simulated goodput-vs-capacity and peak log
//!    occupancy are deterministic and gated inline; completed ops per
//!    wall second goes through `--check` like the other regions.
//!
//! Modes: `--fast` shrinks every region for CI smoke runs; `--out PATH`
//! overrides the JSON destination; `--check PATH` compares the fresh
//! event-list throughput against a committed baseline JSON and exits
//! nonzero on a >20% regression.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use bytes::Bytes;
use pmnet_core::batch::{BatchBuilder, BatchFrames};
use pmnet_core::client::{AppRequest, RequestKind, RequestSource};
use pmnet_core::config::{ApplyConfig, BatchConfig, SystemConfig};
use pmnet_core::kvproto::KvFrame;
use pmnet_core::protocol::{PacketType, PmnetHeader};
use pmnet_core::server::ServerLib;
use pmnet_core::system::{DesignPoint, MicroSource, SystemBuilder};
use pmnet_net::Addr;
use pmnet_sim::meter::{CountingAlloc, Meter};
use pmnet_sim::{Dur, Engine, NodeId, SimRng, Time};
use pmnet_traffic::{
    AdmissionSpec as TrafficAdmissionSpec, ArrivalSpec as TrafficArrivalSpec,
    ChurnSpec as TrafficChurnSpec, TrafficSpec, TrafficSystem,
};
use pmnet_workloads::KvHandler;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// The binary-heap event list the timer wheel replaced, reproduced here
/// as the measurement baseline. Ordering contract is identical:
/// `(time, seq)` min-first, so simultaneous events deliver FIFO.
struct HeapEngine {
    heap: BinaryHeap<Reverse<(Time, u64, NodeId, u64)>>,
    seq: u64,
    now: Time,
}

impl HeapEngine {
    fn new() -> HeapEngine {
        HeapEngine {
            heap: BinaryHeap::new(),
            seq: 0,
            now: Time::ZERO,
        }
    }

    fn schedule(&mut self, at: Time, dest: NodeId, msg: u64) {
        self.heap.push(Reverse((at, self.seq, dest, msg)));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(Time, NodeId, u64)> {
        let Reverse((at, _, dest, msg)) = self.heap.pop()?;
        self.now = at;
        Some((at, dest, msg))
    }

    fn now(&self) -> Time {
        self.now
    }
}

/// Steady-state churn: `hold` pending events, then `iters` cycles of
/// pop-one/schedule-one with the delay mix a packet simulation produces
/// (mostly short hops, a tail of long timers). Returns events/sec.
fn churn_wheel(hold: usize, iters: u64, rng: &mut SimRng) -> (f64, f64) {
    let mut e: Engine<u64> = Engine::new();
    for i in 0..hold {
        let d = delay(rng);
        e.schedule_in(d, NodeId(i as u32), i as u64);
    }
    let before = e.delivered();
    let m = Meter::start();
    for i in 0..iters {
        let (_, dest, msg) = e.pop().expect("hold set never drains");
        let d = delay(rng);
        e.schedule(e.now() + d, dest, msg.wrapping_add(i));
    }
    let r = m.finish(e.delivered() - before);
    (r.events_per_sec, r.allocs_per_event)
}

fn churn_heap(hold: usize, iters: u64, rng: &mut SimRng) -> f64 {
    let mut e = HeapEngine::new();
    for i in 0..hold {
        let d = delay(rng);
        e.schedule(Time::ZERO + d, NodeId(i as u32), i as u64);
    }
    let m = Meter::start();
    for i in 0..iters {
        let (_, dest, msg) = e.pop().expect("hold set never drains");
        let d = delay(rng);
        e.schedule(e.now() + d, dest, msg.wrapping_add(i));
    }
    m.finish(iters).events_per_sec
}

/// The delay mix: 80% short hops (sub-microsecond to ~10us), 15% medium
/// (service times, ~100us), 5% long timers (retransmission, ~5ms — lands
/// in the wheel's upper levels / overflow).
fn delay(rng: &mut SimRng) -> Dur {
    let roll = rng.uniform_u64(0..100);
    if roll < 80 {
        Dur::nanos(rng.uniform_u64(60..10_000))
    } else if roll < 95 {
        Dur::nanos(rng.uniform_u64(10_000..200_000))
    } else {
        Dur::nanos(rng.uniform_u64(1_000_000..8_000_000))
    }
}

/// Encode/decode round trips through header + KV codec; returns
/// (frames/sec, allocs/frame). The pooled builder path should make the
/// steady state allocation-free.
fn codec_loop(iters: u64) -> (f64, f64) {
    let key = Bytes::from_static(b"bench-key-0123456789");
    let value = Bytes::from(vec![0xA5u8; 512]);
    let m = Meter::start();
    let mut sink = 0u64;
    for i in 0..iters {
        let frame = KvFrame::Set {
            key: key.clone(),
            value: value.clone(),
        };
        let body = frame.encode();
        let hdr = PmnetHeader::request(
            PacketType::UpdateReq,
            (i & 0xFFFF) as u16,
            i as u32,
            Addr(1),
            Addr(2),
            0,
            1,
        )
        .with_payload(&body);
        let wire = hdr.encode(&body);
        let (h, body) = PmnetHeader::decode(&wire).expect("self-encoded packet");
        let decoded = KvFrame::decode(&body).expect("self-encoded frame");
        if let KvFrame::Set { value, .. } = &decoded {
            sink = sink.wrapping_add(u64::from(value[0])) + u64::from(h.seq);
        }
    }
    std::hint::black_box(sink);
    let r = m.finish(iters);
    (r.events_per_sec, r.allocs_per_event)
}

/// The same frames pushed through the doorbell batch framing: `window`
/// frames packed per [`BatchBuilder`], decoded back out through
/// [`BatchFrames`] with the zero-copy payload slices. Returns
/// (frames/sec, allocs/frame) counted over *frames*, not batches.
fn codec_batched_loop(iters: u64, window: u64) -> (f64, f64) {
    let key = Bytes::from_static(b"bench-key-0123456789");
    let value = Bytes::from(vec![0xA5u8; 512]);
    let per_frame = 20 + 2 + key.len() + value.len() + 64;
    let m = Meter::start();
    let mut sink = 0u64;
    let mut frames_done = 0u64;
    while frames_done < iters {
        let mut builder = BatchBuilder::with_capacity(window as usize * per_frame);
        for i in 0..window {
            let frame = KvFrame::Set {
                key: key.clone(),
                value: value.clone(),
            };
            let body = frame.encode();
            let seq = frames_done + i;
            let hdr = PmnetHeader::request(
                PacketType::UpdateReq,
                (seq & 0xFFFF) as u16,
                seq as u32,
                Addr(1),
                Addr(2),
                0,
                1,
            )
            .with_payload(&body);
            builder.push(&hdr, &body);
        }
        let wire = builder.finish();
        let batch = BatchFrames::decode(&wire).expect("self-encoded batch");
        for (h, body) in batch {
            let decoded = KvFrame::decode(&body).expect("self-encoded frame");
            if let KvFrame::Set { value, .. } = &decoded {
                sink = sink.wrapping_add(u64::from(value[0])) + u64::from(h.seq);
            }
            frames_done += 1;
        }
    }
    std::hint::black_box(sink);
    let r = m.finish(frames_done);
    (r.events_per_sec, r.allocs_per_event)
}

/// Wall-clock end-to-end throughput: the full simulated system (closed-
/// loop clients, PMNet switch device, server) run to completion, scored
/// as completed client operations per host second. This prices the whole
/// stack — event loop, codec, device, server — so a regression anywhere
/// moves it even when the codec microbenchmark stays flat.
fn e2e_ops_per_sec(clients: usize, updates_per_client: usize, window: u32) -> f64 {
    let cfg = SystemConfig {
        batch: BatchConfig::windowed(window),
        ..SystemConfig::default()
    };
    let mut b = SystemBuilder::new(DesignPoint::PmnetSwitch, cfg);
    for _ in 0..clients {
        b = b.client(Box::new(MicroSource::updates(updates_per_client, 512)));
    }
    let mut sys = b.build(7);
    let t0 = Instant::now();
    sys.run_clients(Dur::secs(120));
    let wall = t0.elapsed().as_secs_f64().max(1e-9);
    let m = sys.metrics();
    assert_eq!(
        m.completed,
        clients * updates_per_client,
        "e2e benchmark workload must finish (window {window})"
    );
    m.completed as f64 / wall
}

fn campaign_wall_ms(plans: usize) -> (u128, u64) {
    let t0 = Instant::now();
    let out = pmnet_chaos::run_lossy_recovery_campaign(77, plans);
    (t0.elapsed().as_millis(), out.digest)
}

/// Saturation throughput of the sharded fabric: sweep the offered load
/// (closed-loop client count) and keep the peak. Past the knee this
/// simulator degrades rather than plateaus, so the peak over the sweep
/// *is* the saturation point — a single client count would under-read
/// whichever design it doesn't suit.
fn fabric_saturation(shards: u8) -> f64 {
    let design = DesignPoint::PmnetSharded { shards };
    let mut best = 0.0f64;
    for clients in [32usize, 40, 48, 56, 64] {
        let (gbps, _, _) = pmnet_bench::stress_point(design, clients, 1024, Dur::millis(2), 3);
        best = best.max(gbps);
    }
    best
}

/// A 100%-update KV write mix with the paper's TPCC lock fraction
/// (Section III-C: ~13.7% of requests hit the locking primitive): that
/// fraction of Sets lands on one hot shared key — serialized by the apply
/// pool's same-key write fences, the simulator's analogue of the lock —
/// while the rest spread over per-client key ranges and apply in
/// parallel.
#[derive(Debug)]
struct LockMixSource {
    remaining: usize,
    client: usize,
    issued: usize,
}

const LOCK_PERMILLE: u64 = 137;

impl RequestSource for LockMixSource {
    fn next_request(&mut self, rng: &mut SimRng) -> Option<AppRequest> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.issued += 1;
        let key = if rng.uniform_u64(0..1000) < LOCK_PERMILLE {
            Bytes::from_static(b"lock:hot")
        } else {
            Bytes::from(format!("c{}:k{}", self.client, self.issued % 64).into_bytes())
        };
        let mut value = vec![0u8; 128];
        rng.fill_bytes(&mut value);
        Some(AppRequest {
            kind: RequestKind::Update,
            payload: KvFrame::Set {
                key,
                value: Bytes::from(value),
            }
            .encode(),
        })
    }
}

/// Runs the lock-fraction mix against a real KV server applying on
/// `apply_threads` workers and scores completed operations per *simulated*
/// second — fully deterministic, so the scaling ratio is gated inline
/// rather than via `--check`. `server_workers` is pinned to 1 so the
/// baseline is a genuine single-core server: `apply_threads: 1` serializes
/// every apply on that core, while the pool's own workers provide the
/// multi-core overlap under test. Returns (ops/sim-sec, same-key fences).
fn lock_fraction_ops_per_sim_sec(apply_threads: u32, clients: usize, updates: usize) -> (f64, u64) {
    let cfg = SystemConfig {
        apply: ApplyConfig::threaded(apply_threads).with_sched_seed(7),
        server_workers: 1,
        ..SystemConfig::default()
    };
    // TPCC-style transaction work on top of the raw index op, so apply —
    // not the wire — is the bottleneck the extra cores relieve.
    let mut b = SystemBuilder::new(DesignPoint::PmnetSwitch, cfg)
        .handler_factory(|| Box::new(KvHandler::new("btree", 5).with_extra_cost(Dur::micros(10))));
    for client in 0..clients {
        b = b.client(Box::new(LockMixSource {
            remaining: updates,
            client,
            issued: 0,
        }));
    }
    let mut sys = b.build(11);
    sys.run_clients(Dur::secs(120));
    let m = sys.metrics();
    assert_eq!(
        m.completed,
        clients * updates,
        "lock-fraction workload must finish (threads {apply_threads})"
    );
    // PMNet acks from the network, so client completion never waits for
    // the server cores — the clients finish while apply work is still
    // queued. Drain until every update reached the handler, then score
    // against the *apply makespan* (`ServerLib::apply_busy_until`): the
    // instant the last worker goes idle is what extra cores shrink.
    // `run_until` leaves `now` at the last processed event, so drive an
    // explicit cursor — `run_for(1ms)` from a stale `now` would spin on an
    // empty window forever while the apply-done timer sits a few ms out.
    let total = (clients * updates) as u64;
    let mut cursor = sys.world.now();
    let mut guard = 0;
    while sys
        .world
        .node::<ServerLib>(sys.server)
        .counters()
        .updates_applied
        < total
    {
        cursor += Dur::millis(1);
        sys.world.run_until(cursor);
        guard += 1;
        assert!(
            guard < 10_000,
            "apply backlog never drained: {:?} (want {total}) pool: {}",
            sys.world.node::<ServerLib>(sys.server).counters(),
            sys.world.node::<ServerLib>(sys.server).pool_debug()
        );
    }
    let server = sys.world.node::<ServerLib>(sys.server);
    let fences = server.counters().apply_key_fences;
    let sim_secs = (server.apply_busy_until() - Time::ZERO).as_nanos() as f64 / 1e9;
    (m.completed as f64 / sim_secs.max(1e-12), fences)
}

/// Open-loop overload point: the `pmnet-traffic` engine at `factor` x a
/// probed saturation capacity, with the AIMD admission gate and the
/// device-log spill policy engaged. Returns (capacity ops/s, goodput
/// ops/s at the overload point, peak log entries, completed ops per
/// *wall* second of the overload run). The simulated quantities are
/// deterministic and gated inline; the wall-clock one goes through
/// `--check` like the other throughput regions.
fn traffic_overload(factor: f64, measure: Dur) -> (f64, f64, u64, f64) {
    let cfg = SystemConfig {
        device: pmnet_core::config::DeviceConfig::fpga().with_spill_policy(8, 1024),
        ..SystemConfig::default()
    };

    let point = |arrivals: TrafficArrivalSpec, admission: TrafficAdmissionSpec| {
        let mut spec = TrafficSpec::poisson(1.0);
        spec.arrivals = arrivals;
        spec.admission = admission;
        spec.churn = TrafficChurnSpec::none();
        spec.measure = measure;
        spec.drain = Dur::millis(10);
        let mut sys = TrafficSystem::build_with(&spec, cfg, 42);
        let t0 = Instant::now();
        sys.run();
        let wall = t0.elapsed().as_secs_f64().max(1e-9);
        let report = sys.report(&pmnet_telemetry::Telemetry::disabled());
        (report, wall)
    };

    // Saturation probe: admission open, rate doubled past the knee.
    let mut capacity = 0.0f64;
    let mut rate = 1_000_000.0;
    loop {
        let (report, _) = point(
            TrafficArrivalSpec::Poisson { rate_per_sec: rate },
            TrafficAdmissionSpec::Open,
        );
        capacity = capacity.max(report.goodput_per_sec);
        if report.goodput_per_sec < 0.9 * report.observed_offered_per_sec || rate >= 32_000_000.0 {
            break;
        }
        rate *= 2.0;
    }

    let (report, wall) = point(
        TrafficArrivalSpec::Poisson {
            rate_per_sec: capacity * factor,
        },
        TrafficAdmissionSpec::aimd(),
    );
    assert_eq!(
        report.stranded_log_entries, 0,
        "traffic overload point must drain the device log"
    );
    let wall_ops = report.counters.completed as f64 / wall;
    (
        capacity,
        report.goodput_per_sec,
        report.peak_log_entries,
        wall_ops,
    )
}

/// Pulls `"field": <number>` out of a flat JSON file without a JSON
/// dependency (the workspace vendors no serde).
fn json_number(text: &str, field: &str) -> Option<f64> {
    let needle = format!("\"{field}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fast = args.iter().any(|a| a == "--fast");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_sim.json".into());
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let (hold, iters, codec_iters, plans) = if fast {
        (16_384, 400_000u64, 100_000u64, 20)
    } else {
        (65_536, 2_000_000u64, 500_000u64, 200)
    };
    let (e2e_clients, e2e_updates) = if fast { (8, 150) } else { (16, 400) };

    eprintln!("sim_throughput: event-list churn (hold={hold}, iters={iters})");
    let mut rng = SimRng::seed(42);
    // Interleave a warmup of each engine so neither benefits from a
    // colder allocator.
    churn_wheel(1024, 50_000, &mut rng.fork(0));
    churn_heap(1024, 50_000, &mut rng.fork(1));
    let (wheel_eps, wheel_ape) = churn_wheel(hold, iters, &mut rng.fork(2));
    let heap_eps = churn_heap(hold, iters, &mut rng.fork(3));
    let speedup = wheel_eps / heap_eps;
    eprintln!(
        "  wheel {:.0} ev/s ({wheel_ape:.3} allocs/ev)  heap {:.0} ev/s  speedup {speedup:.2}x",
        wheel_eps, heap_eps
    );

    eprintln!("sim_throughput: codec round trips (iters={codec_iters})");
    codec_loop(codec_iters / 10); // warm the buffer pools
    let (frames_ps, allocs_pf) = codec_loop(codec_iters);
    eprintln!("  {frames_ps:.0} frames/s, {allocs_pf:.3} allocs/frame");

    eprintln!("sim_throughput: batched codec round trips (iters={codec_iters}, window=16)");
    codec_batched_loop(codec_iters / 10, 16);
    let (frames_ps_batched, allocs_pf_batched) = codec_batched_loop(codec_iters, 16);
    eprintln!("  {frames_ps_batched:.0} frames/s, {allocs_pf_batched:.3} allocs/frame");

    eprintln!(
        "sim_throughput: e2e system run ({e2e_clients} clients x {e2e_updates} updates, \
         windows 1 and 16)"
    );
    let e2e_ops = e2e_ops_per_sec(e2e_clients, e2e_updates, 1);
    let e2e_ops_batched = e2e_ops_per_sec(e2e_clients, e2e_updates, 16);
    eprintln!("  window 1: {e2e_ops:.0} ops/s  window 16: {e2e_ops_batched:.0} ops/s");

    eprintln!("sim_throughput: lossy-recovery campaign (seed 77, {plans} plans)");
    let (wall_ms, digest) = campaign_wall_ms(plans);
    eprintln!("  {wall_ms} ms, digest {digest:#018x}");

    eprintln!("sim_throughput: fabric saturation sweep (1/2/4 shards, 1 KiB updates)");
    let sat1 = fabric_saturation(1);
    let sat2 = fabric_saturation(2);
    let sat4 = fabric_saturation(4);
    eprintln!(
        "  1 shard {sat1:.2} Gbps  2 shards {sat2:.2} Gbps ({:.2}x)  4 shards {sat4:.2} Gbps ({:.2}x)",
        sat2 / sat1,
        sat4 / sat1
    );
    // Simulated numbers are deterministic, so these are exact gates, not
    // noise-tolerant baselines. A chain does ~2x the per-update packet
    // work of a bare device (stage to the backup, collect the chain ack),
    // so two replicated chains buy fault tolerance at near parity with
    // the single unreplicated device, and capacity scales from there.
    assert!(
        sat2 > 0.8 * sat1,
        "two chains must hold near parity with one bare device \
         ({sat2:.2} vs {sat1:.2} Gbps)"
    );
    assert!(
        sat4 > 1.15 * sat1 && sat4 > 1.2 * sat2,
        "four chains must scale past both the bare device and two chains \
         ({sat4:.2} vs {sat1:.2} / {sat2:.2} Gbps)"
    );

    let (lf_clients, lf_updates) = if fast { (24, 60) } else { (32, 150) };
    eprintln!(
        "sim_throughput: lock-fraction apply scaling ({lf_clients} clients x {lf_updates} \
         updates, {LOCK_PERMILLE}permille hot-key writes, apply threads 1 vs 4)"
    );
    let (lf_ops_1, _) = lock_fraction_ops_per_sim_sec(1, lf_clients, lf_updates);
    let (lf_ops_4, lf_fences) = lock_fraction_ops_per_sim_sec(4, lf_clients, lf_updates);
    let lf_scaling = lf_ops_4 / lf_ops_1;
    eprintln!(
        "  1 thread {lf_ops_1:.0} ops/sim-s  4 threads {lf_ops_4:.0} ops/sim-s \
         ({lf_scaling:.2}x, {lf_fences} same-key fences)"
    );
    // Deterministic simulated numbers: exact inline gates. Four apply
    // workers must scale past the sequential path even with the paper's
    // 13.7% lock-fraction serializing on the hot key, and the hot key must
    // actually have forced cross-worker fences (else the gate is vacuous).
    assert!(
        lf_scaling > 1.5,
        "4 apply threads must outscale 1 under the lock-fraction mix \
         ({lf_ops_4:.0} vs {lf_ops_1:.0} ops/sim-s, {lf_scaling:.2}x); \
         Amdahl puts the ceiling near 3x at a 13.7% serial fraction"
    );
    assert!(
        lf_fences > 0,
        "the hot-key writes must exercise the pool's same-key fences"
    );

    // A window shorter than ~20 ms lets the probe read the pre-queue-
    // buildup transient as capacity, which the sustained overload run can
    // then never match; the region is cheap enough to keep one size.
    let tr_measure = Dur::millis(20);
    eprintln!("sim_throughput: open-loop overload point (1.5x probed saturation, AIMD + spill)");
    let (tr_capacity, tr_goodput, tr_peak_log, tr_wall_ops) = traffic_overload(1.5, tr_measure);
    let tr_ratio = tr_goodput / tr_capacity;
    eprintln!(
        "  capacity {tr_capacity:.0} ops/s  goodput@1.5x {tr_goodput:.0} ops/s \
         ({:.0}% of capacity, peak log {tr_peak_log})  {tr_wall_ops:.0} ops/wall-s",
        tr_ratio * 100.0
    );
    // Deterministic simulated gates: under 1.5x overload the AIMD gate
    // must hold goodput near capacity (no congestion collapse) and the
    // spill watermark must bound device-log occupancy.
    assert!(
        tr_ratio > 0.8,
        "goodput collapsed under 1.5x overload: {tr_goodput:.0} vs capacity {tr_capacity:.0}"
    );
    assert!(
        tr_peak_log <= 1024 + 1,
        "spill watermark failed to bound the device log: peak {tr_peak_log}"
    );

    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"schema\": \"pmnet-sim-bench/1\",\n  \"mode\": \"{mode}\",\n  \"event_list\": {{\n    \"hold\": {hold},\n    \"iters\": {iters},\n    \"wheel_events_per_sec\": {wheel_eps:.1},\n    \"heap_events_per_sec\": {heap_eps:.1},\n    \"speedup_vs_heap\": {speedup:.3},\n    \"allocs_per_event\": {wheel_ape:.4}\n  }},\n  \"codec\": {{\n    \"iters\": {codec_iters},\n    \"frames_per_sec\": {frames_ps:.1},\n    \"allocs_per_frame\": {allocs_pf:.4},\n    \"frames_per_sec_batched\": {frames_ps_batched:.1},\n    \"allocs_per_frame_batched\": {allocs_pf_batched:.4}\n  }},\n  \"e2e\": {{\n    \"clients\": {e2e_clients},\n    \"updates_per_client\": {e2e_updates},\n    \"ops_per_sec\": {e2e_ops:.1},\n    \"ops_per_sec_batched\": {e2e_ops_batched:.1}\n  }},\n  \"campaign\": {{\n    \"plans\": {plans},\n    \"wall_ms\": {wall_ms},\n    \"digest\": \"{digest:#018x}\",\n    \"threads\": {threads}\n  }},\n  \"fabric\": {{\n    \"sat_gbps_1_shard\": {sat1:.3},\n    \"sat_gbps_2_shards\": {sat2:.3},\n    \"sat_gbps_4_shards\": {sat4:.3},\n    \"scaling_4_vs_1\": {ratio41:.3}\n  }},\n  \"lock_fraction\": {{\n    \"lock_permille\": {LOCK_PERMILLE},\n    \"ops_per_sim_sec_1_thread\": {lf_ops_1:.1},\n    \"ops_per_sim_sec_4_threads\": {lf_ops_4:.1},\n    \"apply_scaling_4_vs_1\": {lf_scaling:.3},\n    \"same_key_fences\": {lf_fences}\n  }},\n  \"traffic\": {{\n    \"capacity_ops_per_sim_sec\": {tr_capacity:.1},\n    \"overload_factor\": 1.5,\n    \"goodput_ops_per_sim_sec\": {tr_goodput:.1},\n    \"goodput_over_capacity\": {tr_ratio:.3},\n    \"peak_log_entries\": {tr_peak_log},\n    \"traffic_wall_ops_per_sec\": {tr_wall_ops:.1}\n  }}\n}}\n",
        ratio41 = sat4 / sat1,
        mode = if fast { "fast" } else { "full" },
    );
    std::fs::write(&out_path, &json).expect("write BENCH_sim.json");
    eprintln!("sim_throughput: wrote {out_path}");

    if let Some(path) = check_path {
        let baseline =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        let base_eps = json_number(&baseline, "wheel_events_per_sec")
            .expect("baseline missing wheel_events_per_sec");
        let base_speedup =
            json_number(&baseline, "speedup_vs_heap").expect("baseline missing speedup_vs_heap");
        let eps_ratio = wheel_eps / base_eps;
        let speedup_ratio = speedup / base_speedup;
        eprintln!(
            "sim_throughput: check vs {path}: events/sec {:.1}% of baseline, heap-normalized {:.1}%",
            eps_ratio * 100.0,
            speedup_ratio * 100.0
        );
        // The absolute gate catches same-machine regressions; the
        // heap-normalized gate rescues runs on slower hardware (both
        // engines scale down together unless the wheel itself regressed).
        let mut failed = false;
        if eps_ratio < 0.80 && speedup_ratio < 0.80 {
            eprintln!("sim_throughput: FAIL — events/sec regressed more than 20%");
            failed = true;
        }
        // Throughput gates for the codec and end-to-end regions use the
        // event-list ratio as the machine-speed proxy: a slower box drags
        // every region down together, a real regression moves one region
        // while the proxy holds. Baselines predating a field skip its
        // gate, so the check stays usable across baseline generations.
        for (field, fresh) in [
            ("frames_per_sec", frames_ps),
            ("frames_per_sec_batched", frames_ps_batched),
            ("ops_per_sec", e2e_ops),
            ("ops_per_sec_batched", e2e_ops_batched),
            ("traffic_wall_ops_per_sec", tr_wall_ops),
        ] {
            let Some(base) = json_number(&baseline, field) else {
                eprintln!("sim_throughput: baseline has no {field}; skipping gate");
                continue;
            };
            let ratio = fresh / base;
            eprintln!(
                "sim_throughput: check {field}: {:.1}% of baseline",
                ratio * 100.0
            );
            if ratio < 0.80 && ratio / eps_ratio.min(1.0) < 0.80 {
                eprintln!("sim_throughput: FAIL — {field} regressed more than 20%");
                failed = true;
            }
        }
        // Allocations per frame are near-deterministic, so this is an
        // absolute bound rather than a ratio.
        if let Some(base) = json_number(&baseline, "allocs_per_frame") {
            if allocs_pf > base + 0.1 {
                eprintln!(
                    "sim_throughput: FAIL — allocs/frame rose to {allocs_pf:.3} \
                     (baseline {base:.3})"
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
