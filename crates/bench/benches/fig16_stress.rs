//! Figure 16: bandwidth vs latency under stress (1000 B updates, scaling
//! client instances until the 10 Gbps link saturates).
//!
//! Paper: latency is flat while offered load is below the physical limit,
//! then spikes at ~10 Gbps; PMNet latency is consistently below the
//! Client-Server baseline before saturation.

use pmnet_bench::{banner, row, stress_point, us};
use pmnet_core::system::DesignPoint;
use pmnet_sim::Dur;

fn main() {
    banner(
        "Figure 16",
        "Bandwidth vs latency stress test (1000 B updates, ideal handler)",
    );
    row(&[
        "clients".into(),
        "CS Gbps".into(),
        "CS mean".into(),
        "PMNet Gbps".into(),
        "PMNet mean".into(),
        "PMNet p99".into(),
    ]);
    let window = Dur::millis(40);
    for clients in [1usize, 2, 4, 8, 16, 32, 48, 64, 96] {
        let (bg, bm, _) = stress_point(DesignPoint::ClientServer, clients, 1000, window, 5);
        let (pg, pm, pp99) = stress_point(DesignPoint::PmnetSwitch, clients, 1000, window, 5);
        row(&[
            clients.to_string(),
            format!("{bg:.2}"),
            us(bm),
            format!("{pg:.2}"),
            us(pm),
            us(pp99),
        ]);
    }
    println!();
    println!("paper: flat latency until the 10 Gbps limit, then a spike;");
    println!("       PMNet consistently below Client-Server before saturation.");
}
