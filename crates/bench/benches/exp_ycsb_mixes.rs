//! Beyond the paper: the standard YCSB core mixes (A/B/C/D/F) across the
//! three designs, showing where in-network persistence and in-network
//! caching each pay off. (The paper's Figure 19 sweeps a synthetic
//! update-ratio axis; these are the canonical industry mixes.)

use pmnet_bench::{banner, row, x};
use pmnet_core::system::{DesignPoint, SystemBuilder};
use pmnet_core::SystemConfig;
use pmnet_sim::Dur;
use pmnet_workloads::{KvHandler, YcsbMix, YcsbSource};

fn throughput(mix: YcsbMix, design: DesignPoint, cache: usize) -> f64 {
    let mut config = SystemConfig::default();
    if cache > 0 {
        config.device = config.device.with_cache(cache);
    }
    let mut b = SystemBuilder::new(design, config).warmup(40);
    for _ in 0..4 {
        b = b.client(Box::new(YcsbSource::workload(mix, 400, 10_000)));
    }
    let mut sys = b
        .handler_factory(|| Box::new(KvHandler::new("hashmap", 13)))
        .build(19);
    sys.run_clients(Dur::secs(60));
    sys.metrics().ops_per_sec
}

fn main() {
    banner(
        "YCSB core mixes",
        "Throughput by design (normalized to Client-Server), 4 clients",
    );
    row(&[
        "mix".into(),
        "Client-Server".into(),
        "PMNet".into(),
        "PMNet+cache".into(),
    ]);
    for (mix, label) in [
        (YcsbMix::A, "A 50/50"),
        (YcsbMix::B, "B 5/95"),
        (YcsbMix::C, "C 0/100"),
        (YcsbMix::D, "D latest"),
        (YcsbMix::F, "F RMW"),
    ] {
        let base = throughput(mix, DesignPoint::ClientServer, 0);
        let pmnet = throughput(mix, DesignPoint::PmnetSwitch, 0);
        let cached = throughput(mix, DesignPoint::PmnetSwitch, 65_536);
        row(&[label.into(), x(1.0), x(pmnet / base), x(cached / base)]);
    }
    println!();
    println!("expectation: update-heavy mixes (A, F) gain most from logging;");
    println!("read-heavy mixes need the cache for large gains. D (read-latest)");
    println!("benefits most: fresh inserts are already Pending in the cache.");
    println!("C runs against a never-written store, so misses cannot fill the");
    println!("cache (found=false replies are not cacheable) and nothing gains.");
}
