//! Figure 15: update latency of an ideal request handler with variable
//! request sizes (50 B – 1000 B), single client.
//!
//! Paper targets: PMNet-Switch/NIC ~2.83x/2.90x over Client-Server at
//! 50 B, shrinking to ~2.19x at 1000 B; |Switch − NIC| < 1 us.

use pmnet_bench::{banner, row, us, x, Micro};
use pmnet_core::system::DesignPoint;

fn main() {
    banner(
        "Figure 15",
        "Update latency vs payload size (ideal handler, 1 client)",
    );
    row(&[
        "payload".into(),
        "Client-Server".into(),
        "PMNet-Switch".into(),
        "PMNet-NIC".into(),
        "switch spdup".into(),
        "nic spdup".into(),
    ]);
    for payload in [50usize, 100, 200, 400, 600, 800, 1000] {
        let mean = |design| {
            Micro {
                payload,
                ..Micro::new(design)
            }
            .run(42)
            .latency
            .mean()
        };
        let base = mean(DesignPoint::ClientServer);
        let sw = mean(DesignPoint::PmnetSwitch);
        let nic = mean(DesignPoint::PmnetNic);
        row(&[
            format!("{payload}B"),
            us(base),
            us(sw),
            us(nic),
            x(base.as_nanos() as f64 / sw.as_nanos() as f64),
            x(base.as_nanos() as f64 / nic.as_nanos() as f64),
        ]);
    }
    println!();
    println!("paper: 2.83x (switch) / 2.90x (nic) at 50 B -> ~2.19x at 1000 B;");
    println!("       switch-vs-NIC difference under ~1 us (both sub-RTT).");
}
