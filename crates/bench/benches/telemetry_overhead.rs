//! Telemetry overhead smoke: the same seeded workload run back-to-back
//! with a detached handle and with full tracing attached.
//!
//! Two properties are checked:
//!
//! 1. **Equivalence** — completions, mean latency and the flattened
//!    counter set are bit-identical with telemetry on or off (hooks are
//!    pure observation; a divergence here is a correctness bug, not a
//!    perf problem). This always fails the run.
//! 2. **Overhead** — full tracing must stay within 10% of the detached
//!    run (`--gate` enforces; without it the ratio is only reported).
//!    Scheduler noise only ever *adds* time, so the best-of-N minimum
//!    over enough rounds converges on the unloaded cost of each side;
//!    rounds alternate which side runs first so neither one
//!    systematically enjoys a warmer cache. A breach must show in both
//!    the best-of ratio and the median per-round ratio, and survive a
//!    fresh re-measurement, before the gate fails the run.
//!
//! Modes: `--fast` shrinks the workload for CI smoke runs; `--gate`
//! exits nonzero when the overhead bound is breached.

use pmnet_core::system::{DesignPoint, SystemBuilder};
use pmnet_core::SystemConfig;
use pmnet_sim::meter::Meter;
use pmnet_sim::Dur;
use pmnet_telemetry::Telemetry;
use pmnet_workloads::{KvHandler, YcsbSource};

const SEED: u64 = 53;

struct RunResult {
    wall_nanos: u64,
    completed: usize,
    mean: Dur,
    counters: String,
    traces: usize,
}

fn run_once(attach: bool, requests: usize) -> RunResult {
    let mut b = SystemBuilder::new(DesignPoint::PmnetSwitch, SystemConfig::default())
        .handler_factory(|| Box::new(KvHandler::new("hashmap", 5)));
    for _ in 0..4 {
        b = b.client(Box::new(YcsbSource::new(requests, 4000, 0.7, 100)));
    }
    let mut sys = b.build(SEED);
    let tel = if attach {
        Telemetry::full()
    } else {
        Telemetry::disabled()
    };
    sys.attach_telemetry(&tel);
    let m = Meter::start();
    sys.run_clients(Dur::secs(30));
    let metrics = sys.metrics();
    let r = m.finish(metrics.completed as u64);
    RunResult {
        wall_nanos: r.wall_nanos,
        completed: metrics.completed,
        mean: metrics.latency.mean(),
        counters: sys.counter_set().to_string(),
        traces: tel.traces().len(),
    }
}

/// One full measurement: `rounds` interleaved pairs. Returns the
/// best-of-N ratio and the median per-round ratio — two estimators with
/// different failure modes under load (the minimum can pair a quiet
/// "off" window with an unlucky "on" one; the median is immune to that
/// but jittery when every round is disturbed).
fn measure(requests: usize, rounds: usize) -> (f64, f64) {
    let mut ratios: Vec<f64> = Vec::new();
    let mut best_off = u64::MAX;
    let mut best_on = u64::MAX;
    let mut reference: Option<RunResult> = None;
    for round in 0..rounds {
        // Alternate which side runs first within the pair.
        let (off, on) = if round % 2 == 0 {
            let off = run_once(false, requests);
            let on = run_once(true, requests);
            (off, on)
        } else {
            let on = run_once(true, requests);
            let off = run_once(false, requests);
            (off, on)
        };
        // Equivalence: telemetry must observe, never perturb.
        assert_eq!(on.completed, off.completed, "completions diverged");
        assert_eq!(on.mean, off.mean, "mean latency diverged");
        assert_eq!(on.counters, off.counters, "counter set diverged");
        assert_eq!(on.traces, on.completed, "one trace per completion");
        assert_eq!(off.traces, 0, "detached handle must record nothing");
        if let Some(r) = &reference {
            assert_eq!(r.mean, on.mean, "nondeterministic run at round {round}");
        }
        ratios.push(on.wall_nanos as f64 / off.wall_nanos as f64);
        best_off = best_off.min(off.wall_nanos);
        best_on = best_on.min(on.wall_nanos);
        reference = Some(off);
    }

    let ops = reference.as_ref().map_or(0, |r| r.completed);
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("ratios are finite"));
    let best = best_on as f64 / best_off as f64;
    let median = ratios[ratios.len() / 2];
    eprintln!(
        "telemetry_overhead: {ops} ops x {rounds} rounds: off {:.2} ms, on {:.2} ms, \
         overhead {:+.1}% best-of / {:+.1}% median",
        best_off as f64 / 1e6,
        best_on as f64 / 1e6,
        (best - 1.0) * 100.0,
        (median - 1.0) * 100.0,
    );
    (best, median)
}

const BUDGET: f64 = 1.10;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fast = args.iter().any(|a| a == "--fast");
    let gate = args.iter().any(|a| a == "--gate");
    // Fast mode still needs runs long enough that scheduler jitter can't
    // fake a double-digit overhead: ~10ms per side per round, and enough
    // rounds for each side's minimum to converge.
    let (requests, rounds) = if fast { (300, 9) } else { (600, 9) };

    // Warm up both paths once so the first measured round isn't paying
    // for lazy allocator/page-cache setup.
    run_once(false, 40);
    run_once(true, 40);

    // A breach must show in BOTH estimators, and survive one fresh
    // re-measurement: a real regression (the budget guards against
    // order-of-magnitude mistakes, not percent creep) trips everything;
    // a loaded CI neighbor rarely distorts two estimators twice.
    let mut breaches = 0;
    for attempt in 0..2 {
        let (best, median) = measure(requests, rounds);
        if best <= BUDGET || median <= BUDGET {
            break;
        }
        breaches += 1;
        if attempt == 0 {
            eprintln!("telemetry_overhead: over budget on both estimators; re-measuring once");
        }
    }
    if breaches == 2 {
        eprintln!("telemetry_overhead: full tracing exceeds the 10% overhead budget");
        if gate {
            std::process::exit(1);
        }
        eprintln!("telemetry_overhead: (not gated; pass --gate to enforce)");
    }
}
