//! Figure 20: CDF of request latency with (a) 100% and (b) 50% update
//! requests, for Client-Server, PMNet, and PMNet with read caching — over
//! the GET/SET key-value workloads (Twitter/TPCC excluded, Section VI-B4).
//!
//! Paper: 3.23x better p99 at 100% updates; with 50% updates the no-cache
//! PMNet CDF has a knee at the 50th percentile (only updates accelerate),
//! while caching extends the benefit through most reads; caching gives a
//! 3.36x lower average latency.

use pmnet_bench::{banner, geomean, row, run_workload, us, x};
use pmnet_core::system::DesignPoint;
use pmnet_sim::stats::LatencyHistogram;
use pmnet_workloads::WorkloadSpec;

fn merged(design: DesignPoint, ratio: f64, cache: usize) -> LatencyHistogram {
    let mut all = LatencyHistogram::new();
    for spec in WorkloadSpec::cacheable() {
        let (m, _) = run_workload(spec, design, 4, 300, ratio, cache, 9);
        all.merge(&m.latency);
    }
    all
}

fn print_cdf(label: &str, h: &mut LatencyHistogram) {
    let points = h.cdf(10);
    let cells: Vec<String> = points.iter().map(|(d, _)| us(*d)).collect();
    let mut line = vec![label.to_string()];
    line.extend(cells);
    row(&line);
}

fn main() {
    banner(
        "Figure 20",
        "Latency CDF, KV workloads (columns = 10th..100th percentile)",
    );
    for ratio in [1.0, 0.5] {
        println!("\n--- {:.0}% update requests ---", ratio * 100.0);
        let mut base = merged(DesignPoint::ClientServer, ratio, 0);
        let mut pmnet = merged(DesignPoint::PmnetSwitch, ratio, 0);
        let mut cached = merged(DesignPoint::PmnetSwitch, ratio, 65_536);
        print_cdf("Client-Server", &mut base);
        print_cdf("PMNet", &mut pmnet);
        print_cdf("PMNet+cache", &mut cached);
        let p99 =
            base.percentile(0.99).as_nanos() as f64 / pmnet.percentile(0.99).as_nanos() as f64;
        let avg_cache = base.mean().as_nanos() as f64 / cached.mean().as_nanos() as f64;
        println!(
            "p99 improvement (PMNet): {}   avg improvement (PMNet+cache): {}",
            x(p99),
            x(avg_cache)
        );
    }
    println!();
    println!("paper: 3.23x p99 at 100% updates; 3.36x average with caching;");
    println!("       a knee at p50 for no-cache PMNet at 50% updates.");
    let _ = geomean(&[1.0]); // keep helper linked for doc consistency
}
