//! Section VI-B6: recovering from server failures.
//!
//! Paper: with the network saturated (worst case: the maximum number of
//! logged requests), resending a single request takes ~67 us, draining the
//! whole log ~4.4 s, and the entire recovery (resend + application
//! recovery) at most 9.3 s — a small fraction of a 2–3 minute boot.
//!
//! The simulated log is Eq.-1 sized rather than multi-gigabyte, so the
//! absolute drain time scales with the number of pending entries; the
//! per-request resend time and the "recovery ≪ reboot" conclusion are the
//! reproduction targets.

use bytes::Bytes;
use pmnet_bench::{banner, row, us};
use pmnet_core::api::{update, ScriptSource};
use pmnet_core::kvproto::KvFrame;
use pmnet_core::server::ServerLib;
use pmnet_core::system::{DesignPoint, SystemBuilder};
use pmnet_core::{PmnetDevice, SystemConfig};
use pmnet_sim::{Dur, Time};
use pmnet_workloads::KvHandler;

fn set_frame(i: u32) -> Bytes {
    KvFrame::Set {
        key: format!("key{i}").into_bytes().into(),
        value: i.to_le_bytes().to_vec().into(),
    }
    .encode()
}

fn main() {
    banner(
        "Section VI-B6",
        "Server power-failure recovery via the in-network redo log",
    );
    row(&[
        "pending".into(),
        "resend/req".into(),
        "redo drain".into(),
        "app recovery".into(),
        "intact".into(),
    ]);
    for &n in &[100u32, 400, 1000] {
        let script: Vec<_> = (0..n).map(|i| update(set_frame(i))).collect();
        let mut sys = SystemBuilder::new(DesignPoint::PmnetSwitch, SystemConfig::default())
            .client(Box::new(ScriptSource::new(script)))
            .handler_factory(|| Box::new(KvHandler::new("btree", 1)))
            .build(21);
        let server_id = sys.server;
        let dev_id = sys.devices[0];
        // Crash early so most of the workload is still logged, restore
        // after a short outage.
        sys.world
            .schedule_crash(server_id, Time::ZERO + Dur::millis(1), Some(Dur::millis(5)));
        sys.run_clients(Dur::secs(120));
        sys.world.run_for(Dur::millis(500));

        let server = sys.world.node_mut::<ServerLib>(server_id);
        let rec = server.recovery().expect("server recovered");
        let drain = rec.last_redo_at.saturating_since(rec.polled_at);
        let app = rec.polled_at.saturating_since(rec.restored_at);
        let per_req = if rec.redo_applied > 0 {
            drain / rec.redo_applied
        } else {
            Dur::ZERO
        };
        let handler = server
            .handler_mut()
            .as_any_mut()
            .downcast_mut::<KvHandler>()
            .expect("kv handler");
        let mut intact = 0;
        for i in 0..n {
            if handler.peek(format!("key{i}").as_bytes()) == Some(i.to_le_bytes().to_vec()) {
                intact += 1;
            }
        }
        let dev = sys.world.node::<PmnetDevice>(dev_id);
        row(&[
            format!("{} redo", rec.redo_applied),
            us(per_req),
            format!("{drain}"),
            format!("{app}"),
            format!("{intact}/{n} ({} in log)", dev.log_len()),
        ]);
    }
    println!();
    println!("paper: ~67 us per resent request; full recovery (resend + app)");
    println!("       seconds-scale, a small fraction of the 2-3 min reboot.");
}
