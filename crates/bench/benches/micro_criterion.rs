//! Criterion microbenchmarks of the hot paths: CRC-32 hashing, PMNet
//! header codec, device log operations, the five KV index structures, the
//! PM arena persist path, and a small end-to-end simulation step.
//!
//! These measure the *reproduction's* own performance (how fast the
//! simulator and data structures run on the host), complementing the
//! figure harnesses which measure *simulated* time.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use pmnet_core::system::{DesignPoint, UpdateExperiment};
use pmnet_core::{LogStore, PacketType, PmnetHeader, SystemConfig};
use pmnet_net::Addr;
use pmnet_pmem::kv::{all_stores, KvStore};
use pmnet_pmem::{crc32, PmArena};
use pmnet_sim::Time;

fn bench_crc32(c: &mut Criterion) {
    let data = vec![0xA5u8; 1024];
    c.bench_function("crc32/1KiB", |b| b.iter(|| crc32(black_box(&data))));
}

fn bench_header_codec(c: &mut Criterion) {
    let h = PmnetHeader::request(PacketType::UpdateReq, 1, 42, Addr(1), Addr(9), 0, 1);
    let payload = vec![0u8; 100];
    c.bench_function("header/encode_100B", |b| {
        b.iter(|| h.encode(black_box(&payload)))
    });
    let body = h.encode(&payload);
    c.bench_function("header/decode_100B", |b| {
        b.iter(|| PmnetHeader::decode(black_box(&body)))
    });
}

fn bench_logstore(c: &mut Criterion) {
    c.bench_function("logstore/log_and_invalidate", |b| {
        b.iter_batched(
            || LogStore::new(&SystemConfig::default().device),
            |mut store| {
                for seq in 0..100u32 {
                    let h =
                        PmnetHeader::request(PacketType::UpdateReq, 1, seq, Addr(1), Addr(9), 0, 1);
                    store.try_log(
                        Time::ZERO,
                        h,
                        Bytes::from_static(&[0u8; 100]),
                        Addr(9),
                        51001,
                        51000,
                    );
                    store.invalidate(h.hash);
                }
                store
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_kv_structures(c: &mut Criterion) {
    let mut group = c.benchmark_group("kv_insert_get_1k");
    for store_fn in all_stores(1) {
        let name = store_fn.name().to_string();
        drop(store_fn);
        group.bench_function(&name, |b| {
            b.iter_batched(
                || {
                    all_stores(1)
                        .into_iter()
                        .find(|s| s.name() == name)
                        .expect("store exists")
                },
                |mut store: Box<dyn KvStore>| {
                    for i in 0..1000u32 {
                        store.insert(&i.to_be_bytes(), &[1u8; 32]);
                    }
                    for i in 0..1000u32 {
                        black_box(store.get(&i.to_be_bytes()));
                    }
                    store
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_arena_persist(c: &mut Criterion) {
    c.bench_function("arena/write_persist_64B", |b| {
        b.iter_batched(
            || {
                let mut arena = PmArena::new(1 << 20);
                let ptr = arena.alloc(64).expect("fits");
                (arena, ptr)
            },
            |(mut arena, ptr)| {
                for i in 0..100u64 {
                    arena.write_u64(ptr, i);
                    arena.persist(ptr, 8);
                }
                arena
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_simulation(c: &mut Criterion) {
    c.bench_function("sim/pmnet_switch_100_requests", |b| {
        b.iter(|| {
            UpdateExperiment::new(DesignPoint::PmnetSwitch, SystemConfig::default())
                .requests_per_client(100)
                .run(black_box(7))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_crc32,
        bench_header_codec,
        bench_logstore,
        bench_kv_structures,
        bench_arena_persist,
        bench_simulation
);
criterion_main!(benches);
