//! Figure 21: update latency in a 3-way replication system, normalized to
//! the no-replication Client-Server design.
//!
//! Paper: in-network replication (three chained PMNet switches) is 5.88x
//! faster than server-side replication on average, and costs only ~16%
//! over single-log PMNet because the per-switch persists overlap.

use pmnet_bench::{banner, row, us, x, Micro};
use pmnet_core::system::DesignPoint;

fn main() {
    banner(
        "Figure 21",
        "3-way replication latency (normalized to no-repl Client-Server)",
    );
    let mean = |design| Micro::new(design).run(42).latency.mean();
    let base = mean(DesignPoint::ClientServer);
    let pmnet1 = mean(DesignPoint::PmnetSwitch);
    let pmnet3 = mean(DesignPoint::PmnetReplicated { devices: 3 });
    let server3 = mean(DesignPoint::ClientServerReplicated { replicas: 3 });

    row(&["design".into(), "latency".into(), "normalized".into()]);
    let norm = |d: pmnet_sim::Dur| x(d.as_nanos() as f64 / base.as_nanos() as f64);
    row(&["Client-Server (no repl)".into(), us(base), norm(base)]);
    row(&["PMNet (no repl)".into(), us(pmnet1), norm(pmnet1)]);
    row(&["PMNet 3-way".into(), us(pmnet3), norm(pmnet3)]);
    row(&["Server-side 3-way".into(), us(server3), norm(server3)]);
    println!();
    println!(
        "PMNet-3way vs server-side-3way: {}   (paper: 5.88x)",
        x(server3.as_nanos() as f64 / pmnet3.as_nanos() as f64)
    );
    println!(
        "replication overhead over single-log PMNet: {:.0}%   (paper: ~16%)",
        100.0 * (pmnet3.as_nanos() as f64 / pmnet1.as_nanos() as f64 - 1.0)
    );
}
