//! Section III-C: the fraction of TPCC requests that access the locking
//! primitive and therefore bypass PMNet.
//!
//! Paper: 13.7% of TPCC requests bypass PMNet; all other evaluated
//! workloads are lock-free.

use pmnet_bench::{banner, row};
use pmnet_core::client::{RequestKind, RequestSource};
use pmnet_sim::SimRng;
use pmnet_workloads::{TpccSource, TwitterSource, WorkloadSpec, YcsbSource};

fn bypass_fraction(mut source: Box<dyn RequestSource>, seed: u64) -> (f64, usize) {
    let mut rng = SimRng::seed(seed);
    let mut bypass = 0usize;
    let mut total = 0usize;
    while let Some(r) = source.next_request(&mut rng) {
        total += 1;
        if r.kind == RequestKind::Bypass {
            bypass += 1;
        }
    }
    (bypass as f64 / total.max(1) as f64, total)
}

fn main() {
    banner(
        "Section III-C",
        "Synchronization (bypass) traffic per workload at 100% update ratio",
    );
    row(&["workload".into(), "bypass %".into(), "requests".into()]);
    // TPCC: locks are the only bypass traffic at 100% updates.
    let (f, n) = bypass_fraction(Box::new(TpccSource::new(100_000, 1.0, 1)), 3);
    row(&["tpcc".into(), format!("{:.1}%", f * 100.0), n.to_string()]);
    // Lock-free workloads: zero bypass at 100% updates.
    let (f, n) = bypass_fraction(Box::new(YcsbSource::new(20_000, 10_000, 1.0, 80)), 3);
    row(&[
        "pmdk/redis".into(),
        format!("{:.1}%", f * 100.0),
        n.to_string(),
    ]);
    let (f, n) = bypass_fraction(Box::new(TwitterSource::new(20_000, 1000, 1.0, 0)), 3);
    row(&[
        "twitter".into(),
        format!("{:.1}%", f * 100.0),
        n.to_string(),
    ]);
    println!();
    println!("paper: 13.7% of TPCC requests access the locking primitive;");
    println!("       the other workloads are lock-free.");
    let _ = WorkloadSpec::all();
}
