//! Figure 22: update throughput with an optimized (libVMA-style,
//! kernel-bypass) network stack on both client and server.
//!
//! Paper: PMNet provides 3.08x better throughput on kernel stacks and
//! still 3.56x with libVMA — bypass shrinks the stack share, but the
//! remaining server-side time PMNet removes is still substantial.

use pmnet_bench::{banner, row, x, Micro};
use pmnet_core::system::DesignPoint;
use pmnet_core::SystemConfig;

fn main() {
    banner(
        "Figure 22",
        "Update throughput with an optimized network stack (8 clients)",
    );
    let tput = |design, config| {
        Micro {
            clients: 8,
            requests: 1000,
            warmup: 100,
            config,
            ..Micro::new(design)
        }
        .run(42)
        .ops_per_sec
    };
    let kernel = SystemConfig::default();
    let vma = SystemConfig::default().with_bypass_stacks();

    let cs = tput(DesignPoint::ClientServer, kernel);
    let pm = tput(DesignPoint::PmnetSwitch, kernel);
    let cs_vma = tput(DesignPoint::ClientServer, vma);
    let pm_vma = tput(DesignPoint::PmnetSwitch, vma);

    row(&["design".into(), "ops/s".into(), "vs own baseline".into()]);
    row(&["Client-Server".into(), format!("{cs:.0}"), x(1.0)]);
    row(&["PMNet".into(), format!("{pm:.0}"), x(pm / cs)]);
    row(&[
        "Client-Server+libVMA".into(),
        format!("{cs_vma:.0}"),
        x(1.0),
    ]);
    row(&[
        "PMNet+libVMA".into(),
        format!("{pm_vma:.0}"),
        x(pm_vma / cs_vma),
    ]);
    println!();
    println!("kernel-stack speedup: {}   (paper: 3.08x)", x(pm / cs));
    println!(
        "bypass-stack speedup: {}   (paper: 3.56x)",
        x(pm_vma / cs_vma)
    );
}
