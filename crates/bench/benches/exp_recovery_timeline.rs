//! Recovery timeline (companion to Section VI-B6): client-observed
//! completion rate per millisecond before, during and after a server power
//! failure. PMNet keeps acknowledging updates *through* the outage (the
//! device's PM is the persistence point), while the baseline stalls for
//! the whole downtime.

use pmnet_bench::{banner, row};
use pmnet_core::client::ClientLib;
use pmnet_core::system::{DesignPoint, SystemBuilder};
use pmnet_core::SystemConfig;
use pmnet_sim::stats::TimeSeries;
use pmnet_sim::{Dur, Time};
use pmnet_workloads::{KvHandler, YcsbSource};

fn timeline(design: DesignPoint) -> Vec<f64> {
    let mut b = SystemBuilder::new(design, SystemConfig::default());
    for _ in 0..8 {
        b = b.client(Box::new(YcsbSource::new(100_000, 10_000, 1.0, 80)));
    }
    let mut sys = b
        .handler_factory(|| Box::new(KvHandler::new("hashmap", 3)))
        .build(77);
    // Outage from 5 ms to 10 ms; observe 20 ms total.
    let server = sys.server;
    sys.world
        .schedule_crash(server, Time::ZERO + Dur::millis(5), Some(Dur::millis(5)));
    for &c in &sys.clients.clone() {
        sys.world.start_node(c);
    }
    sys.world.run_until(Time::ZERO + Dur::millis(20));
    let mut ts = TimeSeries::new(Dur::millis(1));
    for &c in &sys.clients {
        for r in sys.world.node::<ClientLib>(c).records() {
            ts.record(r.at, 1);
        }
    }
    let mut rates = ts.rates_per_sec();
    rates.resize(20, 0.0);
    rates
}

fn main() {
    banner(
        "Recovery timeline",
        "Completions/s per 1 ms bucket; server dark from t=5ms to t=10ms",
    );
    let pmnet = timeline(DesignPoint::PmnetSwitch);
    let base = timeline(DesignPoint::ClientServer);
    row(&["ms".into(), "PMNet kops/s".into(), "baseline kops/s".into()]);
    for (i, (p, b)) in pmnet.iter().zip(&base).enumerate() {
        let marker = if (5..10).contains(&i) {
            " <- outage"
        } else {
            ""
        };
        println!(
            "{:>14} {:>14.0} {:>15.0}{marker}",
            i,
            p / 1000.0,
            b / 1000.0
        );
    }
    let during_pmnet: f64 = pmnet[5..10].iter().sum::<f64>() / 5.0;
    let during_base: f64 = base[5..10].iter().sum::<f64>() / 5.0;
    println!();
    println!(
        "during the outage: PMNet sustains {:.0} kops/s, baseline {:.0} kops/s",
        during_pmnet / 1000.0,
        during_base / 1000.0
    );
    println!("PMNet clients keep completing on device ACKs while the server is");
    println!("dark (until the Eq.-1-sized log fills); baseline clients stall.");
}
