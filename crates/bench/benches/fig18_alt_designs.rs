//! Figure 18: PMNet vs the alternative logging designs of Figure 17
//! (client-side logging, server-side logging), with and without 3-way
//! replication. 100 B payloads, ideal handler.
//!
//! Paper values (us): no replication — client-side 10.4 < PMNet 21.5 <
//! server-side 47.97; with 3-way replication — PMNet 22.8 < client-side
//! 41.61 < server-side 94.02.

use pmnet_bench::{banner, row, us, Micro};
use pmnet_core::system::DesignPoint;

fn main() {
    banner(
        "Figure 18",
        "PMNet vs client-side and server-side logging (100 B updates)",
    );
    let mean = |design| Micro::new(design).run(42).latency.mean();
    row(&["design".into(), "no repl".into(), "paper".into()]);
    row(&[
        "client-side log".into(),
        us(mean(DesignPoint::ClientSideLog { replicas: 1 })),
        "10.40us".into(),
    ]);
    row(&[
        "PMNet".into(),
        us(mean(DesignPoint::PmnetSwitch)),
        "21.50us".into(),
    ]);
    row(&[
        "server-side log".into(),
        us(mean(DesignPoint::ServerSideLog { replicas: 1 })),
        "47.97us".into(),
    ]);
    println!();
    row(&["design".into(), "3-way repl".into(), "paper".into()]);
    row(&[
        "PMNet".into(),
        us(mean(DesignPoint::PmnetReplicated { devices: 3 })),
        "22.80us".into(),
    ]);
    row(&[
        "client-side log".into(),
        us(mean(DesignPoint::ClientSideLog { replicas: 3 })),
        "41.61us".into(),
    ]);
    row(&[
        "server-side log".into(),
        us(mean(DesignPoint::ServerSideLog { replicas: 3 })),
        "94.02us".into(),
    ]);
    println!();
    println!("shape: client-side wins unreplicated (no client network stack on");
    println!("the critical path) but degrades badly under replication, while");
    println!("PMNet overlaps the per-device persists and barely moves.");
}
