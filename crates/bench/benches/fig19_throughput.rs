//! Figure 19: application throughput normalized to Client-Server, sweeping
//! the update/read ratio (100% → 25%) over all eight workloads.
//!
//! Paper: 4.31x average speedup at 100% updates; the benefit shrinks as
//! the read share grows (reads are not accelerated without caching).

use pmnet_bench::{banner, geomean, row, run_workload, x};
use pmnet_core::system::DesignPoint;
use pmnet_workloads::WorkloadSpec;

fn main() {
    banner(
        "Figure 19",
        "Normalized throughput vs update ratio (4 clients per workload)",
    );
    let ratios = [1.0, 0.75, 0.5, 0.25];
    let mut header = vec!["workload".to_string()];
    header.extend(ratios.iter().map(|r| format!("{:.0}% upd", r * 100.0)));
    row(&header);

    let mut at_100 = Vec::new();
    for spec in WorkloadSpec::all() {
        let mut cells = vec![spec.name().to_string()];
        for (i, &ratio) in ratios.iter().enumerate() {
            let (base, _) = run_workload(spec, DesignPoint::ClientServer, 4, 400, ratio, 0, 7);
            let (pmnet, _) = run_workload(spec, DesignPoint::PmnetSwitch, 4, 400, ratio, 0, 7);
            let speedup = pmnet.ops_per_sec / base.ops_per_sec;
            if i == 0 {
                at_100.push(speedup);
            }
            cells.push(x(speedup));
        }
        row(&cells);
    }
    println!();
    println!(
        "average speedup at 100% updates: {:.2}x   (paper: 4.31x)",
        geomean(&at_100)
    );
    println!("benefit shrinks with the read share, as in the paper.");
}
