//! Figure 2: latency breakdown of an update request.
//!
//! Paper: the server side (network stack + request processing) makes up
//! ~70% of an update's RTT on average, which is exactly the share PMNet
//! moves off the critical path.
//!
//! Method: run the Client-Server baseline and the PMNet design on the same
//! workload; the measured difference *is* the server-side share, and the
//! nominal stack model decomposes the remainder.

use pmnet_bench::{banner, row, us, Micro};
use pmnet_core::system::DesignPoint;
use pmnet_core::{HostProfile, SystemConfig};

fn main() {
    banner(
        "Figure 2",
        "Latency breakdown of an update request (100 B, ideal handler)",
    );
    let base = Micro::new(DesignPoint::ClientServer).run(42);
    let pmnet = Micro::new(DesignPoint::PmnetSwitch).run(42);

    let total = base.latency.mean();
    let client_net = pmnet.latency.mean(); // client side + network only
    let server_side = total - client_net.min(total);

    // Nominal decomposition of the client+network share.
    let cfg = SystemConfig::default();
    let payload = 100 + 1 + 20; // payload + tag + PMNet header
    let client_stack = cfg.client.kernel_tx.nominal(payload)
        + cfg.client.user_tx.nominal(payload)
        + cfg.client.kernel_rx.nominal(20)
        + cfg.client.user_rx.nominal(20)
        + cfg.client.app_overhead * 2;
    let network = client_net - client_stack.min(client_net);
    let server_stack = cfg.server.kernel_rx.nominal(payload)
        + cfg.server.user_rx.nominal(payload)
        + cfg.server.user_tx.nominal(20)
        + cfg.server.kernel_tx.nominal(20);
    let processing = server_side - server_stack.min(server_side);

    let pct = |d: pmnet_sim::Dur| {
        format!(
            "{:.0}%",
            100.0 * d.as_nanos() as f64 / total.as_nanos() as f64
        )
    };
    row(&["component".into(), "time".into(), "share".into()]);
    row(&["client stack".into(), us(client_stack), pct(client_stack)]);
    row(&["network".into(), us(network), pct(network)]);
    row(&["server stack".into(), us(server_stack), pct(server_stack)]);
    row(&["server processing".into(), us(processing), pct(processing)]);
    row(&["total RTT".into(), us(total), "100%".into()]);
    println!();
    let server_share = 100.0 * server_side.as_nanos() as f64 / total.as_nanos() as f64;
    println!("server-side share: {server_share:.0}%   (paper: ~70% on average)");
    // TCP adds per-direction cost for the TCP-native workloads.
    println!(
        "TCP extra per direction (Redis/Twitter/TPCC baselines): {}",
        us(HostProfile::tcp_extra())
    );
}
