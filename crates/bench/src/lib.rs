//! Shared harness for the figure-regeneration benches.
//!
//! Each `benches/figXX_*.rs` target rebuilds one table or figure of the
//! paper's evaluation (Section VI) and prints the same rows/series the
//! paper reports, annotated with the paper's reported value where one
//! exists. Absolute numbers come from a calibrated simulator (DESIGN.md
//! §2), so the *shape* — who wins, by roughly what factor, where
//! crossovers fall — is the reproduction target.

#![warn(missing_docs)]

use pmnet_core::client::RequestKind;
use pmnet_core::system::{BuiltSystem, DesignPoint, RunMetrics, SystemBuilder};
use pmnet_core::SystemConfig;
use pmnet_sim::{Dur, Time};
use pmnet_workloads::WorkloadSpec;

/// Prints a figure header.
pub fn banner(figure: &str, caption: &str) {
    println!("==============================================================");
    println!("{figure}: {caption}");
    println!("==============================================================");
}

/// Prints a row of aligned cells.
pub fn row(cells: &[String]) {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", line.join(" "));
}

/// Formats microseconds.
pub fn us(d: Dur) -> String {
    format!("{:.2}us", d.as_micros_f64())
}

/// Formats a ratio.
pub fn x(v: f64) -> String {
    format!("{v:.2}x")
}

/// The standard microbenchmark (Section VI-B1): the *ideal request
/// handler* acknowledges on reception, so network and stack dominate.
#[derive(Debug, Clone, Copy)]
pub struct Micro {
    /// Design under test.
    pub design: DesignPoint,
    /// Client instances.
    pub clients: usize,
    /// Request payload bytes.
    pub payload: usize,
    /// Requests per client.
    pub requests: usize,
    /// Warm-up completions excluded per client.
    pub warmup: usize,
    /// Fraction of updates.
    pub update_ratio: f64,
    /// System calibration.
    pub config: SystemConfig,
}

impl Micro {
    /// Single-client, 100 B, update-only defaults.
    pub fn new(design: DesignPoint) -> Micro {
        Micro {
            design,
            clients: 1,
            payload: 100,
            requests: 2000,
            warmup: 200,
            update_ratio: 1.0,
            config: SystemConfig::default(),
        }
    }

    /// Runs and collects.
    pub fn run(self, seed: u64) -> RunMetrics {
        let mut b = SystemBuilder::new(self.design, self.config).warmup(self.warmup);
        for _ in 0..self.clients {
            b = b.client(Box::new(pmnet_core::system::MicroSource::mixed(
                self.requests,
                self.payload,
                self.update_ratio,
            )));
        }
        let mut sys = b.build(seed);
        sys.run_clients(Dur::secs(60));
        sys.metrics()
    }
}

/// Runs a real workload (Figures 19/20): `clients` closed-loop clients of
/// `spec` against the matching PM-backed handler. The baseline keeps the
/// workload's native transport (TCP for Redis/Twitter/TPCC).
pub fn run_workload(
    spec: WorkloadSpec,
    design: DesignPoint,
    clients: usize,
    requests_per_client: usize,
    update_ratio: f64,
    cache_entries: usize,
    seed: u64,
) -> (RunMetrics, BuiltSystem) {
    let mut config = SystemConfig::default();
    if cache_entries > 0 {
        config.device = config.device.with_cache(cache_entries);
    }
    let use_tcp = design == DesignPoint::ClientServer && spec.baseline_uses_tcp();
    let mut b = SystemBuilder::new(design, config)
        .tcp(use_tcp)
        .warmup(requests_per_client / 10);
    for i in 0..clients {
        b = b.client(spec.make_source(requests_per_client, update_ratio, i as u32));
    }
    let mut sys = b
        .handler_factory(move || spec.make_handler(seed))
        .build(seed);
    sys.run_clients(Dur::secs(120));
    let m = sys.metrics();
    (m, sys)
}

/// A fixed-simulated-time saturation point for the Figure 16 stress test:
/// `clients` continuously send `payload`-byte updates for `window`;
/// returns (achieved Gbps of request traffic, mean latency).
pub fn stress_point(
    design: DesignPoint,
    clients: usize,
    payload: usize,
    window: Dur,
    seed: u64,
) -> (f64, Dur, Dur) {
    let mut b = SystemBuilder::new(design, SystemConfig::default()).warmup(20);
    for _ in 0..clients {
        b = b.client(Box::new(pmnet_core::system::MicroSource::updates(
            usize::MAX >> 1,
            payload,
        )));
    }
    let mut sys = b.build(seed);
    for &c in &sys.clients.clone() {
        sys.world.start_node(c);
    }
    sys.world.run_until(Time::ZERO + window);
    let mut latency = pmnet_sim::stats::LatencyHistogram::new();
    let mut completed: u64 = 0;
    for &c in &sys.clients {
        let client = sys.world.node::<pmnet_core::ClientLib>(c);
        for r in client.records() {
            if r.kind == RequestKind::Update {
                latency.record(r.latency);
                completed += 1;
            }
        }
    }
    // Wire bytes per request: payload + opaque tag + PMNet header + UDP/IP.
    let wire = (payload + 1 + 20 + 42) as f64;
    let gbps = completed as f64 * wire * 8.0 / window.as_secs_f64() / 1e9;
    if latency.is_empty() {
        (gbps, Dur::ZERO, Dur::ZERO)
    } else {
        let p99 = latency.percentile(0.99);
        (gbps, latency.mean(), p99)
    }
}

/// Geometric mean of speedups (how the paper aggregates "on average").
pub fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|v| v.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_identical_values() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn micro_runs_quickly() {
        let m = Micro {
            requests: 50,
            warmup: 5,
            ..Micro::new(DesignPoint::PmnetSwitch)
        }
        .run(1);
        assert_eq!(m.completed, 45);
    }

    #[test]
    fn stress_point_reports_bandwidth() {
        let (gbps, mean, p99) = stress_point(DesignPoint::PmnetSwitch, 4, 1000, Dur::millis(5), 2);
        assert!(gbps > 0.1, "{gbps}");
        assert!(mean > Dur::micros(5));
        assert!(p99 >= mean);
    }
}
