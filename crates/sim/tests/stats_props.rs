//! Property tests for the log-bucketed `LatencyHistogram`: percentile
//! error bounded against an exact sorted-vec oracle, and merge behaving
//! as an associative, commutative fold over bucket state.

use pmnet_sim::stats::LatencyHistogram;
use pmnet_sim::Dur;
use proptest::prelude::*;

/// Exact nearest-rank percentile over raw samples — the behaviour the old
/// sorted-vec histogram implemented, used here as the oracle.
fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn filled(samples: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &s in samples {
        h.record(Dur::nanos(s));
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn percentiles_within_error_bound_of_exact_oracle(
        samples in proptest::collection::vec(0u64..5_000_000_000, 1..400),
        qs in proptest::collection::vec(0u64..1001, 1..8),
    ) {
        let mut h = filled(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();

        // Mean, min, max and count are exact.
        let sum: u128 = sorted.iter().map(|&x| x as u128).sum();
        prop_assert_eq!(h.len(), sorted.len());
        prop_assert_eq!(h.mean().as_nanos(), (sum / sorted.len() as u128) as u64);
        prop_assert_eq!(h.min().as_nanos(), sorted[0]);
        prop_assert_eq!(h.max().as_nanos(), *sorted.last().unwrap());

        // Every queried quantile lands within the documented 2% bound
        // (the scheme's actual bound is 1/128 ≈ 0.8%).
        for q in qs {
            let q = q as f64 / 1000.0;
            let exact = exact_percentile(&sorted, q);
            let got = h.percentile(q).as_nanos();
            let err = got.abs_diff(exact) as f64 / exact.max(1) as f64;
            prop_assert!(
                err <= 0.02,
                "q={} got={} exact={} err={}", q, got, exact, err
            );
            prop_assert!(got >= sorted[0] && got <= *sorted.last().unwrap());
        }

        // The CDF is monotone and ends at the exact maximum.
        let cdf = h.cdf(16);
        for w in cdf.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
        }
        prop_assert_eq!(cdf.last().unwrap().0.as_nanos(), *sorted.last().unwrap());
    }

    #[test]
    fn merge_is_associative_and_commutative(
        a in proptest::collection::vec(0u64..5_000_000_000, 0..100),
        b in proptest::collection::vec(0u64..5_000_000_000, 0..100),
        c in proptest::collection::vec(0u64..5_000_000_000, 0..100),
    ) {
        let (ha, hb, hc) = (filled(&a), filled(&b), filled(&c));

        // (a ∪ b) ∪ c == a ∪ (b ∪ c): identical bucket state, not just
        // identical summaries.
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);

        // a ∪ b == b ∪ a.
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);

        // Merging equals recording the concatenation directly.
        let mut concat: Vec<u64> = a.clone();
        concat.extend_from_slice(&b);
        concat.extend_from_slice(&c);
        prop_assert_eq!(&left, &filled(&concat));
    }
}
