//! Property tests for the timer-wheel event list: order-equivalence against
//! a reference binary-heap model and monotonic delivery under random
//! interleavings of `schedule` / `schedule_in` / `pop`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use pmnet_sim::{Dur, Engine, NodeId, Time};
use proptest::prelude::*;

/// The pre-wheel event list: a plain binary heap over `(time, seq)`.
/// This is the behavioral oracle the wheel must match exactly.
struct RefEngine {
    heap: BinaryHeap<RefEvent>,
    now: Time,
    seq: u64,
}

struct RefEvent {
    at: Time,
    seq: u64,
    dest: NodeId,
    msg: u64,
}

impl PartialEq for RefEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for RefEvent {}
impl PartialOrd for RefEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for RefEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl RefEngine {
    fn new() -> Self {
        RefEngine {
            heap: BinaryHeap::new(),
            now: Time::ZERO,
            seq: 0,
        }
    }
    fn schedule(&mut self, at: Time, dest: NodeId, msg: u64) {
        assert!(at >= self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(RefEvent { at, seq, dest, msg });
    }
    fn pop(&mut self) -> Option<(Time, NodeId, u64)> {
        let ev = self.heap.pop()?;
        self.now = ev.at;
        Some((ev.at, ev.dest, ev.msg))
    }
    fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }
}

/// One step of the interleaved workload. Delays are biased so events land
/// on every wheel level and in the overflow heap (horizon is 2^24 ns).
#[derive(Debug, Clone, Copy)]
enum Op {
    Schedule { delay: u64, dest: u32 },
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Short delays dominate, as in real packet traffic.
        (0u64..64, 0u32..8).prop_map(|(delay, dest)| Op::Schedule { delay, dest }),
        (0u64..5_000, 0u32..8).prop_map(|(delay, dest)| Op::Schedule { delay, dest }),
        (0u64..300_000, 0u32..8).prop_map(|(delay, dest)| Op::Schedule { delay, dest }),
        (0u64..(1 << 26), 0u32..8).prop_map(|(delay, dest)| Op::Schedule { delay, dest }),
        Just(Op::Pop),
        Just(Op::Pop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The wheel delivers the exact same (time, dest, msg) sequence as the
    /// reference heap for any interleaving of schedules and pops, and
    /// `peek_time`/`pending`/`now` agree at every step.
    #[test]
    fn wheel_matches_reference_heap(
        ops in prop::collection::vec(op_strategy(), 1..400),
    ) {
        let mut wheel: Engine<u64> = Engine::new();
        let mut reference = RefEngine::new();
        let mut tag = 0u64;
        for op in ops {
            match op {
                Op::Schedule { delay, dest } => {
                    let at = wheel.now() + Dur::nanos(delay);
                    wheel.schedule(at, dest, tag);
                    reference.schedule(at, NodeId(dest), tag);
                    tag += 1;
                }
                Op::Pop => {
                    prop_assert_eq!(wheel.pop(), reference.pop());
                }
            }
            prop_assert_eq!(wheel.peek_time(), reference.peek_time());
            prop_assert_eq!(wheel.now(), reference.now);
            prop_assert_eq!(wheel.pending(), reference.heap.len());
        }
        // Drain both and compare the tails.
        loop {
            let (a, b) = (wheel.pop(), reference.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// Delivery timestamps never decrease, regardless of how schedules and
    /// pops interleave (the `Engine::pop` clock-regression invariant).
    #[test]
    fn delivery_is_monotonic(
        ops in prop::collection::vec(op_strategy(), 1..400),
    ) {
        let mut e: Engine<u64> = Engine::new();
        let mut last = Time::ZERO;
        let mut tag = 0u64;
        for op in ops {
            match op {
                Op::Schedule { delay, dest } => {
                    e.schedule_in(Dur::nanos(delay), dest, tag);
                    tag += 1;
                }
                Op::Pop => {
                    if let Some((at, _, _)) = e.pop() {
                        prop_assert!(at >= last, "clock regressed: {} < {}", at, last);
                        prop_assert_eq!(e.now(), at);
                        last = at;
                    }
                }
            }
        }
        while let Some((at, _, _)) = e.pop() {
            prop_assert!(at >= last, "clock regressed: {} < {}", at, last);
            last = at;
        }
    }

    /// Simultaneous events pop in schedule order even when they were
    /// scheduled from different `now` cursors (and so landed on different
    /// wheel levels).
    #[test]
    fn simultaneous_events_fifo_across_levels(
        target in 100u64..200_000,
        early in prop::collection::vec(0u64..90, 1..20),
    ) {
        let mut e: Engine<u64> = Engine::new();
        let at = Time::from_nanos(target);
        let mut tag = 0u64;
        e.schedule(at, 0, tag);
        tag += 1;
        // Interleave: pop intermediate events forward, scheduling another
        // event at the same target instant after each advance.
        for d in early {
            if e.now().as_nanos() + d < target {
                e.schedule(Time::from_nanos(e.now().as_nanos() + d), 1, u64::MAX);
                while e.peek_time().is_some_and(|t| t < at) {
                    e.pop();
                }
            }
            e.schedule(at, 0, tag);
            tag += 1;
        }
        let mut seen = Vec::new();
        while let Some((t, _, m)) = e.pop() {
            prop_assert_eq!(t, at);
            seen.push(m);
        }
        let expect: Vec<u64> = (0..tag).collect();
        prop_assert_eq!(seen, expect);
    }
}
