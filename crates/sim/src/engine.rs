//! The future-event list: a hierarchical timer wheel with stable FIFO
//! ordering among simultaneous events.
//!
//! The event list is the hottest structure in the simulator: every packet
//! hop, timer, and injection passes through it twice (schedule + pop). A
//! binary heap gives `O(log n)` per operation; the hierarchical timer wheel
//! used here (Varghese & Lauck) gives amortized `O(1)` for the short-delay
//! events that dominate PMNet traffic (sub-microsecond switch hops, RTT-scale
//! timers), falling back to an overflow heap only for events beyond the
//! wheel horizon (~16.8 ms of simulated time).
//!
//! Determinism is preserved exactly: events are delivered in `(time, seq)`
//! order, where `seq` is the global schedule counter, matching the previous
//! heap implementation bit for bit. Property tests below check
//! order-equivalence against a reference model.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use crate::time::Time;

/// Identifies a node (component) in the simulated system.
///
/// `NodeId` is an index into the world's node table; it is allocated by the
/// runtime layer (`pmnet-net`) when components are added to a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

struct Scheduled<M> {
    at: Time,
    seq: u64,
    dest: NodeId,
    msg: M,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}

impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event (and, for
        // ties, the earliest-scheduled event) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// log2 of the slot count per wheel level.
const SLOT_BITS: u32 = 6;
/// Slots per level (64, so one `u64` occupancy bitmap per level).
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels. Level `i` ticks every `64^i` ns.
const LEVELS: usize = 4;
/// Delays at or beyond this many nanoseconds go to the overflow heap
/// (`64^4` ns ≈ 16.8 ms of simulated time).
const HORIZON: u64 = 1 << (SLOT_BITS * LEVELS as u32);

/// Wheel level for a delay strictly below [`HORIZON`].
#[inline]
fn level_for(delta: u64) -> usize {
    debug_assert!(delta < HORIZON);
    if delta < SLOTS as u64 {
        0
    } else {
        ((63 - delta.leading_zeros()) / SLOT_BITS) as usize
    }
}

/// Slot index for an absolute timestamp at a given level.
#[inline]
fn slot_for(at: Time, level: usize) -> usize {
    ((at.as_nanos() >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize
}

struct Slot<M> {
    events: Vec<Scheduled<M>>,
    /// Earliest timestamp among `events`; meaningless when empty.
    min_at: Time,
    /// Whether `events` is sorted descending by `seq` (level 0 only: the
    /// active slot holds a single timestamp, so delivery order is seq
    /// order and a sorted slot delivers by popping from the back).
    sorted: bool,
}

impl<M> Slot<M> {
    fn push(&mut self, ev: Scheduled<M>) {
        if self.events.is_empty() || ev.at < self.min_at {
            self.min_at = ev.at;
        }
        self.events.push(ev);
        self.sorted = false;
    }
}

struct Level<M> {
    /// Bit `s` set iff `slots[s]` is non-empty.
    occupied: u64,
    slots: Vec<Slot<M>>,
}

impl<M> Level<M> {
    fn new() -> Self {
        Level {
            occupied: 0,
            slots: (0..SLOTS)
                .map(|_| Slot {
                    events: Vec::new(),
                    min_at: Time::ZERO,
                    sorted: true,
                })
                .collect(),
        }
    }
}

/// A generic discrete-event engine.
///
/// The engine owns the simulated clock and the future-event list. It knows
/// nothing about what messages mean; the runtime layer pops events and
/// routes them to node handlers.
///
/// Events scheduled for the same instant are delivered in the order they
/// were scheduled (stable FIFO), which keeps simulations deterministic.
///
/// # Example
///
/// ```
/// use pmnet_sim::{Engine, NodeId, Time, Dur};
///
/// let mut e: Engine<u32> = Engine::new();
/// e.schedule_in(Dur::micros(1), 7, 42);
/// let (at, dest, msg) = e.pop().unwrap();
/// assert_eq!(at, Time::ZERO + Dur::micros(1));
/// assert_eq!(dest, NodeId(7));
/// assert_eq!(msg, 42);
/// assert_eq!(e.now(), at);
/// ```
pub struct Engine<M> {
    levels: Vec<Level<M>>,
    /// Events scheduled beyond the wheel horizon, earliest `(at, seq)` first.
    overflow: BinaryHeap<Scheduled<M>>,
    now: Time,
    seq: u64,
    delivered: u64,
    pending: usize,
    /// Memoized [`Engine::earliest_higher`] result; `None` when dirty.
    /// Level-0 traffic (the common case) neither reads nor invalidates the
    /// higher levels, so the per-pop scan is skipped entirely until an
    /// insert or cascade touches a level `>= 1` or the overflow heap.
    higher_cache: std::cell::Cell<Option<Option<(Time, usize, usize)>>>,
}

impl<M> Default for Engine<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Engine<M> {
    /// Creates an empty engine with the clock at [`Time::ZERO`].
    pub fn new() -> Self {
        Engine {
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            overflow: BinaryHeap::new(),
            now: Time::ZERO,
            seq: 0,
            delivered: 0,
            pending: 0,
            higher_cache: std::cell::Cell::new(Some(None)),
        }
    }

    /// The current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Schedules `msg` for delivery to `dest` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time: the simulated past is
    /// immutable.
    pub fn schedule(&mut self, at: Time, dest: impl Into<NodeId>, msg: M) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < now {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.pending += 1;
        self.insert(Scheduled {
            at,
            seq,
            dest: dest.into(),
            msg,
        });
    }

    /// Schedules `msg` for delivery to `dest` after `delay`.
    pub fn schedule_in(&mut self, delay: crate::Dur, dest: impl Into<NodeId>, msg: M) {
        let at = self.now + delay;
        self.schedule(at, dest, msg);
    }

    /// Places an event into the wheel level matching its delay, or the
    /// overflow heap if it lies beyond the horizon. `ev.at >= self.now`
    /// must hold.
    fn insert(&mut self, ev: Scheduled<M>) {
        let delta = ev.at.as_nanos() - self.now.as_nanos();
        if delta >= HORIZON {
            self.overflow.push(ev);
            self.higher_cache.set(None);
            return;
        }
        let lvl = level_for(delta);
        let slot = slot_for(ev.at, lvl);
        if lvl > 0 {
            self.higher_cache.set(None);
        }
        let level = &mut self.levels[lvl];
        level.slots[slot].push(ev);
        level.occupied |= 1 << slot;
    }

    /// First occupied level-0 slot, scanning circularly from the cursor.
    /// Level-0 events all lie in `[now, now + 64)`, so this slot holds the
    /// level's earliest events and every event in it shares one timestamp.
    fn level0_slot(&self) -> Option<usize> {
        let occ = self.levels[0].occupied;
        if occ == 0 {
            return None;
        }
        let start = (self.now.as_nanos() & (SLOTS as u64 - 1)) as u32;
        let d = occ.rotate_right(start).trailing_zeros();
        Some(((start + d) as usize) & (SLOTS - 1))
    }

    /// Candidate slots holding the earliest events of a level `>= 1`: the
    /// cursor's own slot (which may mix the current tick with one full
    /// rotation later) and the first occupied slot after it. The level's
    /// minimum timestamp is the smaller `min_at` of the two.
    fn level_candidates(&self, lvl: usize) -> [Option<usize>; 2] {
        let level = &self.levels[lvl];
        if level.occupied == 0 {
            return [None, None];
        }
        let cur = ((self.now.as_nanos() >> (SLOT_BITS * lvl as u32)) & (SLOTS as u64 - 1)) as u32;
        let c0 = if level.occupied & (1 << cur) != 0 {
            Some(cur as usize)
        } else {
            None
        };
        let rest = level.occupied.rotate_right(cur) & !1;
        let c1 = if rest != 0 {
            Some(((cur + rest.trailing_zeros()) as usize) & (SLOTS - 1))
        } else {
            None
        };
        [c0, c1]
    }

    /// Earliest `(min_at, level, slot)` among levels `>= 1`, with
    /// `level == LEVELS` marking the overflow heap.
    fn earliest_higher(&self) -> Option<(Time, usize, usize)> {
        let mut best: Option<(Time, usize, usize)> = None;
        for lvl in 1..LEVELS {
            for slot in self.level_candidates(lvl).into_iter().flatten() {
                let m = self.levels[lvl].slots[slot].min_at;
                if best.is_none_or(|(b, _, _)| m < b) {
                    best = Some((m, lvl, slot));
                }
            }
        }
        if let Some(top) = self.overflow.peek() {
            if best.is_none_or(|(b, _, _)| top.at < b) {
                best = Some((top.at, LEVELS, 0));
            }
        }
        best
    }

    /// [`Engine::earliest_higher`] through the memo. Valid between
    /// structural changes to levels `>= 1` / overflow: advancing `now`
    /// moves the candidate cursors but cannot change which event is the
    /// levels' minimum, so only inserts and cascades invalidate.
    fn earliest_higher_cached(&self) -> Option<(Time, usize, usize)> {
        if let Some(c) = self.higher_cache.get() {
            return c;
        }
        let c = self.earliest_higher();
        self.higher_cache.set(Some(c));
        c
    }

    /// Moves every event of the current tick out of `slots[slot]` at `lvl`
    /// into lower levels. The cursor must already sit at the slot's minimum
    /// timestamp, so each moved event descends at least one level (the
    /// earliest lands in level 0). Events one full rotation ahead stay put.
    fn cascade(&mut self, lvl: usize, slot: usize) {
        let width = 1u64 << (SLOT_BITS * lvl as u32);
        let now = self.now.as_nanos();
        // Partition in place with swap_remove so the slot keeps its
        // allocation: steady-state cascades are allocation-free. Moved
        // events always land at a strictly lower level, so `insert` never
        // touches the Vec being partitioned.
        let mut events = std::mem::take(&mut self.levels[lvl].slots[slot].events);
        let mut min_keep = Time::MAX;
        let mut i = 0;
        while i < events.len() {
            if events[i].at.as_nanos() - now < width {
                let ev = events.swap_remove(i);
                self.insert(ev);
            } else {
                if events[i].at < min_keep {
                    min_keep = events[i].at;
                }
                i += 1;
            }
        }
        let level = &mut self.levels[lvl];
        if events.is_empty() {
            level.occupied &= !(1 << slot);
        } else {
            level.slots[slot].min_at = min_keep;
        }
        level.slots[slot].events = events;
        self.higher_cache.set(None);
    }

    /// Pulls overflow events that now fall within the wheel horizon. The
    /// cursor must already sit at the overflow minimum.
    fn cascade_overflow(&mut self) {
        let now = self.now.as_nanos();
        while let Some(top) = self.overflow.peek() {
            if top.at.as_nanos() - now >= HORIZON {
                break;
            }
            let ev = self.overflow.pop().expect("peeked entry vanished");
            self.insert(ev);
        }
        self.higher_cache.set(None);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when the event list is empty (simulation complete).
    pub fn pop(&mut self) -> Option<(Time, NodeId, M)> {
        if self.pending == 0 {
            return None;
        }
        loop {
            let t0 = self
                .level0_slot()
                .map(|s| (self.levels[0].slots[s].min_at, s));
            // Cascade any higher source that could hold an event at or
            // before the level-0 minimum: a same-timestamp event living at
            // a higher level may carry a smaller seq and must be delivered
            // first for stable FIFO.
            if let Some((m, lvl, slot)) = self.earliest_higher_cached() {
                if t0.is_none_or(|(t, _)| m <= t) {
                    // `m` is the global minimum pending timestamp, so the
                    // cursor may advance to it; every moved event then has
                    // delay < the source level's tick and descends.
                    debug_assert!(m >= self.now);
                    self.now = m;
                    if lvl == LEVELS {
                        self.cascade_overflow();
                    } else {
                        self.cascade(lvl, slot);
                    }
                    continue;
                }
            }
            let (_, s) = t0.expect("pending > 0 but no event found");
            let slot = &mut self.levels[0].slots[s];
            // Stable FIFO among simultaneous events: deliver smallest seq.
            // The active level-0 slot holds a single timestamp, so sorting
            // it descending by seq once makes every delivery an O(1) pop
            // from the back; pushes mark the slot unsorted again.
            if !slot.sorted {
                if slot.events.len() > 1 {
                    slot.events
                        .sort_unstable_by_key(|e| std::cmp::Reverse(e.seq));
                }
                slot.sorted = true;
            }
            let ev = slot.events.pop().expect("occupied slot was empty");
            if slot.events.is_empty() {
                self.levels[0].occupied &= !(1 << s);
            }
            assert!(ev.at >= self.now, "event list ordering violated");
            self.now = ev.at;
            self.delivered += 1;
            self.pending -= 1;
            return Some((ev.at, ev.dest, ev.msg));
        }
    }

    /// The timestamp of the next pending event, if any.
    ///
    /// Exact and read-only: the runtime uses this to stop at deadlines
    /// without disturbing the event list.
    pub fn peek_time(&self) -> Option<Time> {
        if self.pending == 0 {
            return None;
        }
        let mut best = self.level0_slot().map(|s| self.levels[0].slots[s].min_at);
        if let Some((m, _, _)) = self.earliest_higher_cached() {
            if best.is_none_or(|b| m < b) {
                best = Some(m);
            }
        }
        best
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl<M> fmt::Debug for Engine<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.pending)
            .field("delivered", &self.delivered)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dur;

    #[test]
    fn events_pop_in_time_order() {
        let mut e: Engine<&str> = Engine::new();
        e.schedule(Time::from_nanos(30), 0, "c");
        e.schedule(Time::from_nanos(10), 0, "a");
        e.schedule(Time::from_nanos(20), 0, "b");
        let order: Vec<_> = std::iter::from_fn(|| e.pop()).map(|(_, _, m)| m).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut e: Engine<u32> = Engine::new();
        for i in 0..100 {
            e.schedule(Time::from_nanos(5), 0, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| e.pop()).map(|(_, _, m)| m).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut e: Engine<()> = Engine::new();
        e.schedule_in(Dur::micros(5), 1, ());
        assert_eq!(e.now(), Time::ZERO);
        e.pop().unwrap();
        assert_eq!(e.now(), Time::from_nanos(5_000));
        assert!(e.pop().is_none());
        // Clock stays put once drained.
        assert_eq!(e.now(), Time::from_nanos(5_000));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut e: Engine<()> = Engine::new();
        e.schedule(Time::from_nanos(100), 0, ());
        e.pop().unwrap();
        e.schedule(Time::from_nanos(50), 0, ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut e: Engine<()> = Engine::new();
        e.schedule(Time::from_nanos(42), 0, ());
        assert_eq!(e.peek_time(), Some(Time::from_nanos(42)));
        assert_eq!(e.now(), Time::ZERO);
        assert_eq!(e.pending(), 1);
    }

    #[test]
    fn delivered_counter_counts() {
        let mut e: Engine<u8> = Engine::new();
        for i in 0..10u8 {
            e.schedule(Time::from_nanos(u64::from(i)), 2, i);
        }
        while e.pop().is_some() {}
        assert_eq!(e.delivered(), 10);
    }

    #[test]
    fn same_time_events_at_different_wheel_levels_stay_fifo() {
        // A is scheduled far ahead (lands at level 1); B is scheduled later
        // (larger seq) for the same instant but from a nearer now (level 0).
        // Delivery must still be A before B.
        let mut e: Engine<&str> = Engine::new();
        e.schedule(Time::from_nanos(1), 0, "tick");
        e.schedule(Time::from_nanos(100), 0, "a"); // delta 100 -> level 1
        let _ = e.pop(); // now = 1
        e.schedule(Time::from_nanos(100), 0, "b"); // delta 99 -> level 1
        e.schedule(Time::from_nanos(80), 0, "near"); // delta 79 -> level 1
        let _ = e.pop(); // now = 80
        e.schedule(Time::from_nanos(100), 0, "c"); // delta 20 -> level 0
        let order: Vec<_> = std::iter::from_fn(|| e.pop()).map(|(_, _, m)| m).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn events_beyond_horizon_use_overflow_and_stay_ordered() {
        let mut e: Engine<u32> = Engine::new();
        // One event per decade of delay, far past the 2^24 ns horizon.
        let times = [
            1u64,
            100,
            10_000,
            1_000_000,
            (1 << 24) - 1,
            1 << 24,
            1 << 30,
            1 << 40,
            u64::MAX,
        ];
        for (i, &t) in times.iter().enumerate() {
            e.schedule(Time::from_nanos(t), 0, i as u32);
        }
        let order: Vec<_> = std::iter::from_fn(|| e.pop())
            .map(|(at, _, m)| (at.as_nanos(), m))
            .collect();
        let expect: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i as u32))
            .collect();
        assert_eq!(order, expect);
    }

    #[test]
    fn clock_never_regresses_across_levels() {
        // Deterministic mixed workload crossing every level boundary and
        // the overflow horizon; pop() asserts `at >= now` internally, and
        // we additionally check monotone non-decreasing delivery here.
        let mut e: Engine<u64> = Engine::new();
        let mut x: u64 = 0x243F_6A88_85A3_08D3;
        let mut next = || {
            // xorshift64* — deterministic, no external RNG needed.
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let mut scheduled = 0u64;
        let mut last = Time::ZERO;
        for round in 0..2_000 {
            let r = next();
            // Spread delays across level 0..3 and overflow.
            let delay = match round % 5 {
                0 => r % 64,
                1 => 64 + r % 4_000,
                2 => 4_096 + r % 260_000,
                3 => 262_144 + r % 16_000_000,
                _ => (1 << 24) + r % (1 << 28),
            };
            e.schedule_in(Dur::nanos(delay), 0, scheduled);
            scheduled += 1;
            if r % 3 == 0 {
                if let Some((at, _, _)) = e.pop() {
                    assert!(at >= last, "delivery went backwards: {at} < {last}");
                    last = at;
                }
            }
        }
        while let Some((at, _, _)) = e.pop() {
            assert!(at >= last, "delivery went backwards: {at} < {last}");
            last = at;
        }
        assert_eq!(e.delivered(), scheduled);
        assert_eq!(e.pending(), 0);
    }
}
