//! The future-event list: a priority queue of `(time, destination, message)`
//! triples with stable FIFO ordering among simultaneous events.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use crate::time::Time;

/// Identifies a node (component) in the simulated system.
///
/// `NodeId` is an index into the world's node table; it is allocated by the
/// runtime layer (`pmnet-net`) when components are added to a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

struct Scheduled<M> {
    at: Time,
    seq: u64,
    dest: NodeId,
    msg: M,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}

impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event (and, for
        // ties, the earliest-scheduled event) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A generic discrete-event engine.
///
/// The engine owns the simulated clock and the future-event list. It knows
/// nothing about what messages mean; the runtime layer pops events and
/// routes them to node handlers.
///
/// Events scheduled for the same instant are delivered in the order they
/// were scheduled (stable FIFO), which keeps simulations deterministic.
///
/// # Example
///
/// ```
/// use pmnet_sim::{Engine, NodeId, Time, Dur};
///
/// let mut e: Engine<u32> = Engine::new();
/// e.schedule_in(Dur::micros(1), 7, 42);
/// let (at, dest, msg) = e.pop().unwrap();
/// assert_eq!(at, Time::ZERO + Dur::micros(1));
/// assert_eq!(dest, NodeId(7));
/// assert_eq!(msg, 42);
/// assert_eq!(e.now(), at);
/// ```
pub struct Engine<M> {
    heap: BinaryHeap<Scheduled<M>>,
    now: Time,
    seq: u64,
    delivered: u64,
}

impl<M> Default for Engine<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Engine<M> {
    /// Creates an empty engine with the clock at [`Time::ZERO`].
    pub fn new() -> Self {
        Engine {
            heap: BinaryHeap::new(),
            now: Time::ZERO,
            seq: 0,
            delivered: 0,
        }
    }

    /// The current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedules `msg` for delivery to `dest` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time: the simulated past is
    /// immutable.
    pub fn schedule(&mut self, at: Time, dest: impl Into<NodeId>, msg: M) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < now {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled {
            at,
            seq,
            dest: dest.into(),
            msg,
        });
    }

    /// Schedules `msg` for delivery to `dest` after `delay`.
    pub fn schedule_in(&mut self, delay: crate::Dur, dest: impl Into<NodeId>, msg: M) {
        let at = self.now + delay;
        self.schedule(at, dest, msg);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when the event list is empty (simulation complete).
    pub fn pop(&mut self) -> Option<(Time, NodeId, M)> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.at >= self.now, "event list ordering violated");
        self.now = ev.at;
        self.delivered += 1;
        Some((ev.at, ev.dest, ev.msg))
    }

    /// The timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl<M> fmt::Debug for Engine<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("delivered", &self.delivered)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dur;

    #[test]
    fn events_pop_in_time_order() {
        let mut e: Engine<&str> = Engine::new();
        e.schedule(Time::from_nanos(30), 0, "c");
        e.schedule(Time::from_nanos(10), 0, "a");
        e.schedule(Time::from_nanos(20), 0, "b");
        let order: Vec<_> = std::iter::from_fn(|| e.pop()).map(|(_, _, m)| m).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut e: Engine<u32> = Engine::new();
        for i in 0..100 {
            e.schedule(Time::from_nanos(5), 0, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| e.pop()).map(|(_, _, m)| m).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut e: Engine<()> = Engine::new();
        e.schedule_in(Dur::micros(5), 1, ());
        assert_eq!(e.now(), Time::ZERO);
        e.pop().unwrap();
        assert_eq!(e.now(), Time::from_nanos(5_000));
        assert!(e.pop().is_none());
        // Clock stays put once drained.
        assert_eq!(e.now(), Time::from_nanos(5_000));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut e: Engine<()> = Engine::new();
        e.schedule(Time::from_nanos(100), 0, ());
        e.pop().unwrap();
        e.schedule(Time::from_nanos(50), 0, ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut e: Engine<()> = Engine::new();
        e.schedule(Time::from_nanos(42), 0, ());
        assert_eq!(e.peek_time(), Some(Time::from_nanos(42)));
        assert_eq!(e.now(), Time::ZERO);
        assert_eq!(e.pending(), 1);
    }

    #[test]
    fn delivered_counter_counts() {
        let mut e: Engine<u8> = Engine::new();
        for i in 0..10u8 {
            e.schedule(Time::from_nanos(u64::from(i)), 2, i);
        }
        while e.pop().is_some() {}
        assert_eq!(e.delivered(), 10);
    }
}
