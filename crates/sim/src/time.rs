//! Simulated time: instants ([`Time`]) and durations ([`Dur`]) with
//! nanosecond resolution.
//!
//! All latency constants in the reproduction (stack delays, wire
//! serialization, PM write latency, …) are expressed in these types so that
//! the unit is carried by the type system rather than by convention.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, measured in nanoseconds since simulation start.
///
/// `Time` is ordered and supports the natural arithmetic with [`Dur`]:
///
/// ```
/// use pmnet_sim::{Time, Dur};
/// let t = Time::ZERO + Dur::micros(5);
/// assert_eq!(t - Time::ZERO, Dur::micros(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A span of simulated time in nanoseconds.
///
/// ```
/// use pmnet_sim::Dur;
/// assert_eq!(Dur::micros(2) + Dur::nanos(500), Dur::nanos(2_500));
/// assert_eq!(Dur::millis(1).as_micros_f64(), 1000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(u64);

impl Time {
    /// The start of simulated time.
    pub const ZERO: Time = Time(0);

    /// The largest representable instant (useful as an "idle" sentinel).
    pub const MAX: Time = Time(u64::MAX);

    /// Constructs an instant from raw nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Time {
        Time(ns)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This instant expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// The later of `self` and `other`.
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// The earlier of `self` and `other`.
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }

    /// Duration since `earlier`, saturating to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }
}

impl Dur {
    /// The zero-length duration.
    pub const ZERO: Dur = Dur(0);

    /// Constructs a duration from nanoseconds.
    pub const fn nanos(ns: u64) -> Dur {
        Dur(ns)
    }

    /// Constructs a duration from microseconds.
    pub const fn micros(us: u64) -> Dur {
        Dur(us * 1_000)
    }

    /// Constructs a duration from milliseconds.
    pub const fn millis(ms: u64) -> Dur {
        Dur(ms * 1_000_000)
    }

    /// Constructs a duration from seconds.
    pub const fn secs(s: u64) -> Dur {
        Dur(s * 1_000_000_000)
    }

    /// Constructs a duration from fractional microseconds, rounding to the
    /// nearest nanosecond. Negative inputs clamp to zero.
    pub fn from_micros_f64(us: f64) -> Dur {
        Dur((us * 1_000.0).round().max(0.0) as u64)
    }

    /// Constructs a duration from fractional nanoseconds, rounding to the
    /// nearest nanosecond. Negative inputs clamp to zero.
    pub fn from_nanos_f64(ns: f64) -> Dur {
        Dur(ns.round().max(0.0) as u64)
    }

    /// The raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The longer of `self` and `other`.
    pub fn max(self, other: Dur) -> Dur {
        Dur(self.0.max(other.0))
    }

    /// The shorter of `self` and `other`.
    pub fn min(self, other: Dur) -> Dur {
        Dur(self.0.min(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Dur) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }

    /// Multiplies by a floating-point factor, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `factor` is negative or NaN.
    pub fn mul_f64(self, factor: f64) -> Dur {
        debug_assert!(factor >= 0.0, "duration factor must be non-negative");
        Dur((self.0 as f64 * factor).round() as u64)
    }

    /// The time needed to move `bytes` bytes at `bits_per_sec`, i.e. the
    /// serialization delay of a packet on a link or the occupancy of a PM
    /// write of that size.
    ///
    /// ```
    /// use pmnet_sim::Dur;
    /// // 1000 B at 10 Gbps = 800 ns on the wire.
    /// assert_eq!(Dur::for_bytes_at(1000, 10_000_000_000), Dur::nanos(800));
    /// ```
    pub fn for_bytes_at(bytes: u64, bits_per_sec: u64) -> Dur {
        assert!(bits_per_sec > 0, "bandwidth must be positive");
        let bits = bytes as u128 * 8 * 1_000_000_000;
        Dur((bits / bits_per_sec as u128) as u64)
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    fn add(self, rhs: Dur) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for Time {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<Dur> for Time {
    type Output = Time;
    fn sub(self, rhs: Dur) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    /// # Panics
    ///
    /// Panics if `rhs` is later than `self` (simulated time never runs
    /// backwards; a violation is a logic bug worth catching loudly).
    fn sub(self, rhs: Time) -> Dur {
        assert!(
            self.0 >= rhs.0,
            "time subtraction underflow: {self} - {rhs}"
        );
        Dur(self.0 - rhs.0)
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

impl AddAssign for Dur {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub for Dur {
    type Output = Dur;
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0 - rhs.0)
    }
}

impl SubAssign for Dur {
    fn sub_assign(&mut self, rhs: Dur) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0 * rhs)
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        Dur(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", Dur(self.0))
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(Dur::micros(1), Dur::nanos(1_000));
        assert_eq!(Dur::millis(1), Dur::micros(1_000));
        assert_eq!(Dur::secs(1), Dur::millis(1_000));
    }

    #[test]
    fn time_arithmetic_round_trips() {
        let t = Time::from_nanos(500) + Dur::nanos(250);
        assert_eq!(t.as_nanos(), 750);
        assert_eq!(t - Time::from_nanos(500), Dur::nanos(250));
        assert_eq!(t - Dur::nanos(750), Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn backwards_subtraction_panics() {
        let _ = Time::ZERO - Time::from_nanos(1);
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(
            Time::from_nanos(5).saturating_since(Time::from_nanos(9)),
            Dur::ZERO
        );
    }

    #[test]
    fn serialization_delay_matches_paper_numbers() {
        // Section V-A: 1000 B at 10 Gbps = 800 ns.
        assert_eq!(Dur::for_bytes_at(1000, 10_000_000_000), Dur::nanos(800));
        // 1500 B MTU at 10 Gbps = 1.2 us.
        assert_eq!(Dur::for_bytes_at(1500, 10_000_000_000), Dur::nanos(1200));
    }

    #[test]
    fn mul_div_and_float_conversions() {
        assert_eq!(Dur::nanos(100) * 3, Dur::nanos(300));
        assert_eq!(Dur::nanos(300) / 3, Dur::nanos(100));
        assert_eq!(Dur::from_micros_f64(1.5), Dur::nanos(1_500));
        assert_eq!(Dur::micros(3).as_micros_f64(), 3.0);
        assert_eq!(Dur::micros(2).mul_f64(1.5), Dur::micros(3));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(Dur::nanos(12).to_string(), "12ns");
        assert_eq!(Dur::micros(12).to_string(), "12.000us");
        assert_eq!(Dur::millis(12).to_string(), "12.000ms");
        assert_eq!(Dur::secs(2).to_string(), "2.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: Dur = [Dur::nanos(1), Dur::nanos(2), Dur::nanos(3)]
            .into_iter()
            .sum();
        assert_eq!(total, Dur::nanos(6));
    }
}
