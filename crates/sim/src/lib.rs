//! Deterministic discrete-event simulation kernel.
//!
//! This crate is the lowest substrate of the PMNet reproduction. It provides:
//!
//! * [`Time`] / [`Dur`] — nanosecond-resolution simulated clock types,
//! * [`Engine`] — a generic future-event list (priority queue) with stable
//!   FIFO ordering for simultaneous events,
//! * [`SimRng`] — a seeded random-number generator plus the distribution
//!   helpers the evaluation needs (exponential, lognormal, Zipf),
//! * [`stats`] — histograms, percentile summaries and CDF extraction used to
//!   regenerate the paper's figures,
//! * [`meter`] — events/sec and allocations-per-event self-measurement for
//!   the kernel's own performance contract (DESIGN.md §10),
//! * [`trace`] — a lightweight, optional event trace for debugging.
//!
//! Everything is single-threaded and deterministic: running the same
//! simulation twice with the same seed produces bit-identical results. The
//! higher layers (network, PM device, PMNet protocol) are built as event
//! handlers on top of this kernel.
//!
//! # Example
//!
//! ```
//! use pmnet_sim::{Engine, NodeId, Dur, Time};
//!
//! let mut engine: Engine<&'static str> = Engine::new();
//! engine.schedule(Time::ZERO + Dur::micros(3), NodeId(1), "second");
//! engine.schedule(Time::ZERO + Dur::micros(1), NodeId(0), "first");
//! let (t, dest, msg) = engine.pop().unwrap();
//! assert_eq!((dest, msg), (NodeId(0), "first"));
//! assert_eq!(t, Time::ZERO + Dur::micros(1));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
mod rng;
mod time;

pub mod meter;
pub mod stats;
pub mod trace;

pub use engine::{Engine, NodeId};
pub use rng::SimRng;
pub use time::{Dur, Time};
