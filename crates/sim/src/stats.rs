//! Measurement collection: latency histograms, percentile summaries, CDFs
//! and throughput counters.
//!
//! Every figure in the paper's evaluation reduces to one of these: Fig. 15
//! and 18 report mean latencies, Fig. 16 mean latency vs offered bandwidth,
//! Fig. 19/22 throughput, Fig. 20 full CDFs with p50/p99 markers, Fig. 21
//! normalized means.

use std::collections::BTreeMap;
use std::fmt;

use crate::{Dur, Time};

/// An ordered bag of named event counters.
///
/// Harnesses flatten component counters (client retransmissions, device
/// log bypasses, server recovery retries, ...) into one of these so
/// verdicts and benches can assert on them by name instead of re-deriving
/// the numbers from traces. Deterministic iteration order (sorted by
/// name) keeps renderings digest-stable.
///
/// # Example
///
/// ```
/// use pmnet_sim::stats::CounterSet;
/// let mut c = CounterSet::new();
/// c.add("client.retransmits", 3);
/// c.add("client.retransmits", 2);
/// assert_eq!(c.get("client.retransmits"), 5);
/// assert_eq!(c.get("unknown"), 0);
/// assert_eq!(c.to_string(), "client.retransmits=5");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSet {
    counters: BTreeMap<String, u64>,
}

impl CounterSet {
    /// Creates an empty set.
    pub fn new() -> CounterSet {
        CounterSet::default()
    }

    /// Adds `n` to the named counter (creating it at zero).
    pub fn add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// The counter's value, or 0 if it was never touched.
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Adds every counter of `other` into `self`.
    pub fn merge(&mut self, other: &CounterSet) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Iterates `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True if no counter was ever touched.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }
}

impl fmt::Display for CounterSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{k}={v}")?;
            first = false;
        }
        Ok(())
    }
}

/// Sub-bucket resolution of [`LatencyHistogram`]: each power-of-two octave
/// is split into `2^SUB_BITS` linear sub-buckets.
const SUB_BITS: u32 = 7;
/// Sub-buckets per octave (128).
const SUBS: u64 = 1 << SUB_BITS;
/// Total bucket count: one linear region below `SUBS` plus 57 octaves of
/// `SUBS` sub-buckets covering the rest of the `u64` range.
const BUCKETS: usize = (SUBS as usize) * (64 - SUB_BITS as usize + 1);

/// A fixed-memory log-bucketed duration histogram (HDR-style).
///
/// Samples land in power-of-two octaves split into 128 linear sub-buckets,
/// so `record` is O(1), memory is bounded (~7.4k `u64` buckets, allocated
/// lazily up to the largest octave seen), and two histograms merge by
/// adding bucket counts — which is what the parallel chaos campaigns need.
/// Values below 128 ns are exact; above that, percentiles carry at most
/// `1/128 ≈ 0.8%` relative error ([`LatencyHistogram::MAX_RELATIVE_ERROR`]).
/// `mean`, `min` and `max` are tracked exactly alongside the buckets.
///
/// # Example
///
/// ```
/// use pmnet_sim::{Dur, stats::LatencyHistogram};
/// let mut h = LatencyHistogram::new();
/// for us in 1..=100 {
///     h.record(Dur::micros(us));
/// }
/// // Percentiles are bucketed: within 0.8% of the exact rank value.
/// let p99 = h.percentile(0.99).as_nanos() as f64;
/// assert!((p99 - 99_000.0).abs() / 99_000.0 <= LatencyHistogram::MAX_RELATIVE_ERROR);
/// // Mean, min and max stay exact.
/// assert_eq!(h.mean(), Dur::nanos(50_500));
/// assert_eq!(h.max(), Dur::micros(100));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Per-bucket sample counts, grown on demand (never past [`BUCKETS`]).
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// Bucket index of a nanosecond value.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUBS {
        v as usize
    } else {
        let e = 63 - v.leading_zeros();
        let shift = e - SUB_BITS;
        let sub = (v >> shift) - SUBS;
        ((e - SUB_BITS + 1) as usize) * (SUBS as usize) + sub as usize
    }
}

/// Largest nanosecond value mapping to bucket `idx` (the representative
/// reported for percentiles, before clamping to the exact max).
#[inline]
fn bucket_upper(idx: usize) -> u64 {
    if idx < SUBS as usize {
        idx as u64
    } else {
        let octave = (idx / SUBS as usize) as u32 - 1;
        let sub = (idx % SUBS as usize) as u64;
        let upper = ((SUBS + sub + 1) as u128) << (octave as u128);
        (upper - 1).min(u64::MAX as u128) as u64
    }
}

impl LatencyHistogram {
    /// Worst-case relative error of a percentile query (values below
    /// 128 ns are exact).
    pub const MAX_RELATIVE_ERROR: f64 = 1.0 / SUBS as f64;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample in O(1).
    pub fn record(&mut self, d: Dur) {
        let v = d.as_nanos();
        let idx = bucket_of(v);
        debug_assert!(idx < BUCKETS);
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.sum += v as u128;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The arithmetic mean (exact: total sum over count).
    ///
    /// # Panics
    ///
    /// Panics if the histogram is empty.
    pub fn mean(&self) -> Dur {
        assert!(!self.is_empty(), "mean of empty histogram");
        Dur::nanos((self.sum / self.count as u128) as u64)
    }

    /// The nanosecond value for nearest-rank `rank` (1-based).
    fn value_at_rank(&self, rank: u64) -> u64 {
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_upper(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The `q`-quantile (`q` in `[0, 1]`), nearest-rank method over the
    /// bucketed counts. The result is the upper edge of the rank's bucket
    /// clamped to the observed `[min, max]`, so it is within
    /// [`LatencyHistogram::MAX_RELATIVE_ERROR`] of the exact rank value
    /// (and exact for values below 128 ns, single samples, and `q = 1.0`).
    ///
    /// # Panics
    ///
    /// Panics if the histogram is empty or `q` is outside `[0, 1]`.
    pub fn percentile(&mut self, q: f64) -> Dur {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        assert!(!self.is_empty(), "percentile of empty histogram");
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        Dur::nanos(self.value_at_rank(rank))
    }

    /// Minimum sample (exact).
    ///
    /// # Panics
    ///
    /// Panics if empty.
    pub fn min(&mut self) -> Dur {
        assert!(!self.is_empty(), "min of empty histogram");
        Dur::nanos(self.min)
    }

    /// Maximum sample (exact).
    ///
    /// # Panics
    ///
    /// Panics if empty.
    pub fn max(&mut self) -> Dur {
        assert!(!self.is_empty(), "max of empty histogram");
        Dur::nanos(self.max)
    }

    /// A one-line summary (mean / p50 / p99 / p999 / max).
    ///
    /// # Panics
    ///
    /// Panics if empty.
    pub fn summary(&mut self) -> Summary {
        Summary {
            count: self.len(),
            mean: self.mean(),
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
            p999: self.percentile(0.999),
            min: self.min(),
            max: self.max(),
        }
    }

    /// Extracts `points` evenly spaced CDF points `(latency, cumulative
    /// fraction)` — the series plotted in Figure 20.
    ///
    /// # Panics
    ///
    /// Panics if empty or `points == 0`.
    pub fn cdf(&mut self, points: usize) -> Vec<(Dur, f64)> {
        assert!(points > 0, "need at least one CDF point");
        assert!(!self.is_empty(), "cdf of empty histogram");
        let n = self.count;
        (1..=points)
            .map(|i| {
                let frac = i as f64 / points as f64;
                let rank = ((frac * n as f64).ceil() as u64).clamp(1, n);
                (Dur::nanos(self.value_at_rank(rank)), frac)
            })
            .collect()
    }

    /// Merges another histogram into this one by adding bucket counts.
    /// Exact (no re-bucketing), associative and commutative.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.is_empty() {
            return;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, &theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.sum += other.sum;
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
    }
}

/// Snapshot statistics of a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: Dur,
    /// Median.
    pub p50: Dur,
    /// 90th percentile.
    pub p90: Dur,
    /// 99th percentile (the paper's headline tail metric).
    pub p99: Dur,
    /// 99.9th percentile.
    pub p999: Dur,
    /// Minimum.
    pub min: Dur,
    /// Maximum.
    pub max: Dur,
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={} p50={} p90={} p99={} max={}",
            self.count, self.mean, self.p50, self.p90, self.p99, self.max
        )
    }
}

/// Counts completed operations over a window to derive throughput.
///
/// # Example
///
/// ```
/// use pmnet_sim::{Time, Dur, stats::Throughput};
/// let mut t = Throughput::new();
/// t.start(Time::ZERO);
/// t.record(10);
/// t.finish(Time::ZERO + Dur::secs(2));
/// assert_eq!(t.ops_per_sec(), 5.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Throughput {
    ops: u64,
    bytes: u64,
    start: Option<Time>,
    end: Option<Time>,
}

impl Throughput {
    /// Creates an idle counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the beginning of the measurement window.
    pub fn start(&mut self, at: Time) {
        self.start = Some(at);
    }

    /// Records `n` completed operations.
    pub fn record(&mut self, n: u64) {
        self.ops += n;
    }

    /// Records `n` bytes moved (for bandwidth figures).
    pub fn record_bytes(&mut self, n: u64) {
        self.bytes += n;
    }

    /// Marks the end of the measurement window.
    pub fn finish(&mut self, at: Time) {
        self.end = Some(at);
    }

    /// Total operations recorded.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// The window length.
    ///
    /// # Panics
    ///
    /// Panics if `start`/`finish` were not both called.
    pub fn window(&self) -> Dur {
        let s = self.start.expect("throughput window not started");
        let e = self.end.expect("throughput window not finished");
        e - s
    }

    /// Operations per second over the window.
    ///
    /// # Panics
    ///
    /// Panics if the window is zero-length or unset.
    pub fn ops_per_sec(&self) -> f64 {
        let w = self.window().as_secs_f64();
        assert!(w > 0.0, "zero-length throughput window");
        self.ops as f64 / w
    }

    /// Bits per second moved over the window.
    ///
    /// # Panics
    ///
    /// Panics if the window is zero-length or unset.
    pub fn bits_per_sec(&self) -> f64 {
        let w = self.window().as_secs_f64();
        assert!(w > 0.0, "zero-length throughput window");
        self.bytes as f64 * 8.0 / w
    }
}

/// Fixed-width time buckets counting events per window — the series behind
/// timeline plots such as throughput during a failure/recovery episode.
///
/// # Example
///
/// ```
/// use pmnet_sim::{Time, Dur, stats::TimeSeries};
/// let mut ts = TimeSeries::new(Dur::millis(1));
/// ts.record(Time::from_nanos(100), 1);
/// ts.record(Time::ZERO + Dur::micros(900), 1);
/// ts.record(Time::ZERO + Dur::millis(1) + Dur::micros(1), 5);
/// assert_eq!(ts.buckets(), &[2, 5]);
/// ```
#[derive(Debug, Clone)]
pub struct TimeSeries {
    width: Dur,
    buckets: Vec<u64>,
}

impl TimeSeries {
    /// Creates a series with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: Dur) -> TimeSeries {
        assert!(!width.is_zero(), "zero bucket width");
        TimeSeries {
            width,
            buckets: Vec::new(),
        }
    }

    /// The bucket width.
    pub fn width(&self) -> Dur {
        self.width
    }

    /// Adds `count` events at instant `at`.
    pub fn record(&mut self, at: Time, count: u64) {
        let idx = (at.as_nanos() / self.width.as_nanos()) as usize;
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += count;
    }

    /// The raw per-bucket counts (index i covers `[i*width, (i+1)*width)`).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Per-bucket event *rates* in events/second.
    pub fn rates_per_sec(&self) -> Vec<f64> {
        let w = self.width.as_secs_f64();
        self.buckets.iter().map(|&c| c as f64 / w).collect()
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }
}

/// Online mean/variance (Welford) for cheap running statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The running mean (0 if no observations).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(n: u64) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for i in 1..=n {
            h.record(Dur::nanos(i));
        }
        h
    }

    #[test]
    fn mean_and_percentiles() {
        let mut h = filled(100);
        assert_eq!(h.mean(), Dur::nanos(50)); // (1+..+100)/100 = 50.5 -> 50 (integer div)
        assert_eq!(h.percentile(0.5), Dur::nanos(50));
        assert_eq!(h.percentile(0.99), Dur::nanos(99));
        assert_eq!(h.percentile(1.0), Dur::nanos(100));
        assert_eq!(h.min(), Dur::nanos(1));
        assert_eq!(h.max(), Dur::nanos(100));
    }

    #[test]
    fn percentile_of_single_sample() {
        let mut h = LatencyHistogram::new();
        h.record(Dur::micros(7));
        assert_eq!(h.percentile(0.0), Dur::micros(7));
        assert_eq!(h.percentile(0.5), Dur::micros(7));
        assert_eq!(h.percentile(1.0), Dur::micros(7));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_percentile_panics() {
        LatencyHistogram::new().percentile(0.5);
    }

    #[test]
    fn cdf_is_monotonic_and_spans() {
        let mut h = filled(1000);
        let cdf = h.cdf(20);
        assert_eq!(cdf.len(), 20);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert_eq!(cdf.last().unwrap().1, 1.0);
        assert_eq!(cdf.last().unwrap().0, Dur::nanos(1000));
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = filled(10);
        let b = filled(10);
        a.merge(&b);
        assert_eq!(a.len(), 20);
        assert_eq!(a.max(), Dur::nanos(10));
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut a = filled(10);
        let before = a.clone();
        a.merge(&LatencyHistogram::new());
        assert_eq!(a, before);
        let mut e = LatencyHistogram::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn small_values_are_exact() {
        // The linear region (below 128 ns) buckets every value exactly.
        let mut h = filled(127);
        for i in 1..=127u64 {
            let q = i as f64 / 127.0;
            assert_eq!(h.percentile(q), Dur::nanos(i));
        }
    }

    #[test]
    fn bucket_roundtrip_brackets_every_magnitude() {
        // bucket_upper(bucket_of(v)) must be >= v and within the error
        // bound, across the whole u64 range including the top octave.
        for shift in 0..64u32 {
            for off in [0u64, 1, 3] {
                let v = (1u64 << shift).saturating_add((1u64 << shift) / 7 * off);
                let up = bucket_upper(bucket_of(v));
                assert!(up >= v, "upper {up} < value {v}");
                let err = (up - v) as f64 / v.max(1) as f64;
                assert!(
                    err <= LatencyHistogram::MAX_RELATIVE_ERROR,
                    "err {err} at {v}"
                );
            }
        }
        assert_eq!(bucket_upper(bucket_of(u64::MAX)), u64::MAX);
    }

    #[test]
    fn percentile_error_is_bounded_vs_exact() {
        // Mixed magnitudes: exact nearest-rank oracle vs bucketed result.
        let mut xs: Vec<u64> = (0..500u64).map(|i| (i * i * 7919) % 2_000_000).collect();
        let mut h = LatencyHistogram::new();
        for &x in &xs {
            h.record(Dur::nanos(x));
        }
        xs.sort_unstable();
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * xs.len() as f64).ceil() as usize).clamp(1, xs.len());
            let exact = xs[rank - 1];
            let got = h.percentile(q).as_nanos();
            let err = got.abs_diff(exact) as f64 / exact.max(1) as f64;
            assert!(
                err <= LatencyHistogram::MAX_RELATIVE_ERROR,
                "q={q}: got {got}, exact {exact}"
            );
        }
    }

    #[test]
    fn summary_fields_are_consistent() {
        let mut h = filled(1000);
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert!(s.min <= s.p50 && s.p50 <= s.p90 && s.p90 <= s.p99);
        assert!(s.p99 <= s.p999 && s.p999 <= s.max);
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn throughput_math() {
        let mut t = Throughput::new();
        t.start(Time::ZERO);
        t.record(100);
        t.record_bytes(1_250_000); // 10 Mbit
        t.finish(Time::ZERO + Dur::secs(1));
        assert_eq!(t.ops_per_sec(), 100.0);
        assert_eq!(t.bits_per_sec(), 10_000_000.0);
        assert_eq!(t.ops(), 100);
    }

    #[test]
    fn time_series_buckets_and_rates() {
        let mut ts = TimeSeries::new(Dur::millis(10));
        ts.record(Time::ZERO, 3);
        ts.record(Time::ZERO + Dur::millis(9), 1);
        ts.record(Time::ZERO + Dur::millis(25), 2);
        assert_eq!(ts.buckets(), &[4, 0, 2]);
        assert_eq!(ts.total(), 6);
        let rates = ts.rates_per_sec();
        assert_eq!(rates[0], 400.0);
        assert_eq!(rates[1], 0.0);
        assert_eq!(rates[2], 200.0);
        assert_eq!(ts.width(), Dur::millis(10));
    }

    #[test]
    #[should_panic(expected = "zero bucket width")]
    fn zero_width_series_panics() {
        let _ = TimeSeries::new(Dur::ZERO);
    }

    #[test]
    fn running_stats_match_direct_computation() {
        let mut r = Running::new();
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        for &x in &xs {
            r.add(x);
        }
        assert!((r.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic dataset is 32/7.
        assert!((r.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(r.count(), 8);
    }

    #[test]
    fn running_stats_degenerate_cases() {
        let mut r = Running::new();
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.variance(), 0.0);
        r.add(3.0);
        assert_eq!(r.variance(), 0.0);
        assert_eq!(r.stddev(), 0.0);
    }
}
