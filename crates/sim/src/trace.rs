//! A lightweight, optional event trace.
//!
//! Components can record `(time, source, label)` entries during a run; tests
//! and debugging sessions read them back to understand a simulation's
//! behaviour. Tracing is off by default and costs one branch per call when
//! disabled. A trace may be bounded to a ring of the most recent events so
//! long campaigns (e.g. `pmnet-chaos` searches) keep memory flat.

use std::collections::VecDeque;
use std::fmt;

use crate::{NodeId, Time};

/// One trace entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the event happened.
    pub at: Time,
    /// The node that recorded it.
    pub node: NodeId,
    /// Free-form description.
    pub label: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} {}] {}", self.at, self.node, self.label)
    }
}

/// Collects trace events when enabled.
///
/// # Example
///
/// ```
/// use pmnet_sim::{NodeId, Time, trace::Trace};
/// let mut t = Trace::enabled();
/// t.record(Time::ZERO, NodeId(1), || "hello".to_string());
/// assert_eq!(t.events().len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    /// `None` = unbounded; `Some(cap)` = ring of the `cap` newest events.
    capacity: Option<usize>,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl Trace {
    /// A disabled trace (records nothing).
    pub fn disabled() -> Trace {
        Trace::default()
    }

    /// An enabled, unbounded trace.
    pub fn enabled() -> Trace {
        Trace {
            enabled: true,
            ..Trace::default()
        }
    }

    /// An enabled trace that keeps only the `capacity` most recent events,
    /// evicting the oldest once full (a ring buffer).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn bounded(capacity: usize) -> Trace {
        assert!(capacity > 0, "trace capacity must be nonzero");
        Trace {
            enabled: true,
            capacity: Some(capacity),
            events: VecDeque::with_capacity(capacity),
            dropped: 0,
        }
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The ring capacity, if bounded.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// How many events were evicted to honor the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records an event; `label` is only evaluated when tracing is enabled.
    pub fn record(&mut self, at: Time, node: NodeId, label: impl FnOnce() -> String) {
        if self.enabled {
            if let Some(cap) = self.capacity {
                if self.events.len() == cap {
                    self.events.pop_front();
                    self.dropped += 1;
                }
            }
            self.events.push_back(TraceEvent {
                at,
                node,
                label: label(),
            });
        }
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> &VecDeque<TraceEvent> {
        &self.events
    }

    /// Events whose label contains `needle`.
    pub fn matching<'a>(&'a self, needle: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.label.contains(needle))
    }

    /// Drops all recorded events (the eviction counter is kept).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

/// A cloneable, shared event sink.
///
/// Unlike [`Trace`] — which each node owns privately — a `Tap` is a handle
/// many components clone and push into, with one reader draining the merged
/// stream afterwards. `pmnet-core`'s history recorder builds its operation
/// log on this: every client, server and device holds a clone, and the
/// model checker reads the combined history at end of run. Single-threaded
/// by design (one `Rc` per simulated world); pushes are one pointer chase
/// and never touch the RNG or the event queue, so an attached tap cannot
/// perturb a simulation.
#[derive(Debug, Default)]
pub struct Tap<T> {
    inner: std::rc::Rc<std::cell::RefCell<Vec<T>>>,
}

impl<T> Clone for Tap<T> {
    fn clone(&self) -> Tap<T> {
        Tap {
            inner: std::rc::Rc::clone(&self.inner),
        }
    }
}

impl<T> Tap<T> {
    /// Creates an empty tap.
    pub fn new() -> Tap<T> {
        Tap {
            inner: Default::default(),
        }
    }

    /// Appends one event.
    pub fn push(&self, event: T) {
        self.inner.borrow_mut().push(event);
    }

    /// Events pushed so far.
    pub fn len(&self) -> usize {
        self.inner.borrow().len()
    }

    /// True if nothing was pushed.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().is_empty()
    }

    /// Removes and returns every event, oldest first.
    pub fn drain(&self) -> Vec<T> {
        std::mem::take(&mut *self.inner.borrow_mut())
    }
}

impl<T: Clone> Tap<T> {
    /// A copy of every event, oldest first (the tap keeps them).
    pub fn snapshot(&self) -> Vec<T> {
        self.inner.borrow().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing_and_skips_label() {
        let mut t = Trace::disabled();
        let mut evaluated = false;
        t.record(Time::ZERO, NodeId(0), || {
            evaluated = true;
            String::new()
        });
        assert!(!evaluated, "label closure must not run when disabled");
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::enabled();
        t.record(Time::from_nanos(1), NodeId(0), || "a".into());
        t.record(Time::from_nanos(2), NodeId(1), || "ab".into());
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.matching("ab").count(), 1);
        assert_eq!(t.matching("a").count(), 2);
        t.clear();
        assert!(t.events().is_empty());
    }

    #[test]
    fn bounded_trace_keeps_only_the_newest() {
        let mut t = Trace::bounded(3);
        for i in 0..10u64 {
            t.record(Time::from_nanos(i), NodeId(0), || format!("e{i}"));
        }
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.dropped(), 7);
        let labels: Vec<&str> = t.events().iter().map(|e| e.label.as_str()).collect();
        assert_eq!(labels, ["e7", "e8", "e9"]);
        assert_eq!(t.capacity(), Some(3));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_panics() {
        let _ = Trace::bounded(0);
    }

    #[test]
    fn taps_share_one_stream_across_clones() {
        let tap: Tap<u32> = Tap::new();
        let writer_a = tap.clone();
        let writer_b = tap.clone();
        writer_a.push(1);
        writer_b.push(2);
        writer_a.push(3);
        assert_eq!(tap.len(), 3);
        assert!(!tap.is_empty());
        assert_eq!(tap.snapshot(), vec![1, 2, 3]);
        assert_eq!(tap.drain(), vec![1, 2, 3]);
        assert!(tap.is_empty());
        assert_eq!(writer_a.len(), 0, "drain empties every handle");
    }

    #[test]
    fn display_formats() {
        let e = TraceEvent {
            at: Time::from_nanos(1500),
            node: NodeId(3),
            label: "log".into(),
        };
        assert_eq!(e.to_string(), "[t+1.500us n3] log");
    }
}
