//! A lightweight, optional event trace.
//!
//! Components can record `(time, source, label)` entries during a run; tests
//! and debugging sessions read them back to understand a simulation's
//! behaviour. Tracing is off by default and costs one branch per call when
//! disabled.

use std::fmt;

use crate::{NodeId, Time};

/// One trace entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the event happened.
    pub at: Time,
    /// The node that recorded it.
    pub node: NodeId,
    /// Free-form description.
    pub label: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} {}] {}", self.at, self.node, self.label)
    }
}

/// Collects trace events when enabled.
///
/// # Example
///
/// ```
/// use pmnet_sim::{NodeId, Time, trace::Trace};
/// let mut t = Trace::enabled();
/// t.record(Time::ZERO, NodeId(1), || "hello".to_string());
/// assert_eq!(t.events().len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl Trace {
    /// A disabled trace (records nothing).
    pub fn disabled() -> Trace {
        Trace::default()
    }

    /// An enabled trace.
    pub fn enabled() -> Trace {
        Trace {
            enabled: true,
            events: Vec::new(),
        }
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event; `label` is only evaluated when tracing is enabled.
    pub fn record(&mut self, at: Time, node: NodeId, label: impl FnOnce() -> String) {
        if self.enabled {
            self.events.push(TraceEvent {
                at,
                node,
                label: label(),
            });
        }
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events whose label contains `needle`.
    pub fn matching<'a>(&'a self, needle: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.label.contains(needle))
    }

    /// Drops all recorded events.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing_and_skips_label() {
        let mut t = Trace::disabled();
        let mut evaluated = false;
        t.record(Time::ZERO, NodeId(0), || {
            evaluated = true;
            String::new()
        });
        assert!(!evaluated, "label closure must not run when disabled");
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::enabled();
        t.record(Time::from_nanos(1), NodeId(0), || "a".into());
        t.record(Time::from_nanos(2), NodeId(1), || "ab".into());
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.matching("ab").count(), 1);
        assert_eq!(t.matching("a").count(), 2);
        t.clear();
        assert!(t.events().is_empty());
    }

    #[test]
    fn display_formats() {
        let e = TraceEvent {
            at: Time::from_nanos(1500),
            node: NodeId(3),
            label: "log".into(),
        };
        assert_eq!(e.to_string(), "[t+1.500us n3] log");
    }
}
