//! Self-measurement for the simulation kernel: events per wall-clock
//! second and heap allocations per event.
//!
//! The kernel's performance contract (DESIGN.md §10) is tracked by two
//! numbers: how fast the event loop drains (`events/sec`) and how much it
//! allocates while doing so (`allocs/event`). [`Meter`] samples both over
//! a measured region; [`CountingAlloc`] is a drop-in [`GlobalAlloc`]
//! wrapper a benchmark binary installs with `#[global_allocator]` so the
//! allocation counter is live. Without it, allocation figures read as
//! zero and only throughput is meaningful.
//!
//! The counters are process-wide atomics: cheap enough to leave enabled
//! (one relaxed increment per malloc), and deliberately *not* thread-local
//! so a parallel campaign's allocations are all visible.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts allocations.
///
/// Install it in a benchmark binary:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: pmnet_sim::meter::CountingAlloc = pmnet_sim::meter::CountingAlloc::new();
/// ```
#[derive(Debug)]
pub struct CountingAlloc;

impl CountingAlloc {
    /// A new counting allocator (const so it can back a static).
    pub const fn new() -> CountingAlloc {
        CountingAlloc
    }

    /// Total allocations observed process-wide since start.
    pub fn allocations() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }

    /// Total bytes requested from the allocator since start.
    pub fn allocated_bytes() -> u64 {
        ALLOCATED_BYTES.load(Ordering::Relaxed)
    }
}

impl Default for CountingAlloc {
    fn default() -> CountingAlloc {
        CountingAlloc::new()
    }
}

// SAFETY: defers entirely to `System`; the counters are side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// A measured region: wall time and allocations between `start` and
/// `finish`.
#[derive(Debug)]
pub struct Meter {
    wall: Instant,
    allocs: u64,
    bytes: u64,
}

impl Meter {
    /// Starts measuring.
    pub fn start() -> Meter {
        Meter {
            wall: Instant::now(),
            allocs: CountingAlloc::allocations(),
            bytes: CountingAlloc::allocated_bytes(),
        }
    }

    /// Stops measuring; `events` is how many simulator events the region
    /// delivered (e.g. the difference of [`crate::Engine::delivered`]).
    pub fn finish(self, events: u64) -> MeterReport {
        let wall = self.wall.elapsed();
        let secs = wall.as_secs_f64();
        let allocations = CountingAlloc::allocations() - self.allocs;
        MeterReport {
            events,
            wall_nanos: wall.as_nanos() as u64,
            events_per_sec: if secs > 0.0 {
                events as f64 / secs
            } else {
                0.0
            },
            allocations,
            allocated_bytes: CountingAlloc::allocated_bytes() - self.bytes,
            allocs_per_event: if events > 0 {
                allocations as f64 / events as f64
            } else {
                0.0
            },
        }
    }
}

/// What a [`Meter`] measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeterReport {
    /// Simulator events delivered in the region.
    pub events: u64,
    /// Wall-clock nanoseconds the region took.
    pub wall_nanos: u64,
    /// Delivery throughput.
    pub events_per_sec: f64,
    /// Heap allocations in the region (0 unless [`CountingAlloc`] is the
    /// global allocator).
    pub allocations: u64,
    /// Heap bytes requested in the region.
    pub allocated_bytes: u64,
    /// Allocations divided by events.
    pub allocs_per_event: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_reports_events_and_rates() {
        let m = Meter::start();
        // Do a little real work so elapsed time is nonzero.
        let mut acc = 0u64;
        for i in 0..10_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc);
        let r = m.finish(500);
        assert_eq!(r.events, 500);
        assert!(r.events_per_sec > 0.0);
        // The test binary does not install CountingAlloc, so allocation
        // counts are zero — and must not produce NaN rates.
        assert!(r.allocs_per_event.is_finite());
    }

    #[test]
    fn zero_events_do_not_divide_by_zero() {
        let r = Meter::start().finish(0);
        assert_eq!(r.events, 0);
        assert_eq!(r.allocs_per_event, 0.0);
    }
}
