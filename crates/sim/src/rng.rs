//! Seeded randomness for simulations.
//!
//! All stochastic behaviour in the reproduction (service-time jitter, key
//! popularity, packet loss, …) draws from a single [`SimRng`] owned by the
//! simulation, so a run is fully determined by its seed.

use crate::Dur;

/// A deterministic random-number source with the distribution helpers the
/// evaluation needs.
///
/// Internally a xoshiro256++ generator seeded through splitmix64 — a
/// self-contained implementation so the simulator has no external
/// dependencies and streams are stable across toolchains.
///
/// # Example
///
/// ```
/// use pmnet_sim::SimRng;
/// let mut a = SimRng::seed(7);
/// let mut b = SimRng::seed(7);
/// assert_eq!(a.uniform_u64(0..100), b.uniform_u64(0..100));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> SimRng {
        let mut s = seed;
        SimRng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// The core xoshiro256++ step.
    fn step(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut n2 = s2 ^ s0;
        let mut n3 = s3 ^ s1;
        let n1 = s1 ^ n2;
        let n0 = s0 ^ n3;
        n2 ^= t;
        n3 = n3.rotate_left(45);
        self.state = [n0, n1, n2, n3];
        result
    }

    /// Derives an independent child generator; useful for giving each
    /// client its own stream without coupling their draws.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self.step() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed(s)
    }

    /// A uniform integer in `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn uniform_u64(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(!range.is_empty(), "empty range");
        let span = range.end - range.start;
        // Lemire widening-multiply rejection-free mapping; the bias is
        // < 2^-64 per draw, far below the simulator's statistical needs.
        let x = self.step();
        range.start + ((x as u128 * span as u128) >> 64) as u64
    }

    /// A uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot pick from an empty collection");
        self.uniform_u64(0..n as u64) as usize
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 high bits → the standard [0, 1) double construction.
        (self.step() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// An exponentially distributed duration with the given mean
    /// (inter-arrival times, service-time tails).
    pub fn exponential(&mut self, mean: Dur) -> Dur {
        let u: f64 = self.unit();
        // Inverse CDF; guard against ln(0).
        let x = -(1.0 - u).max(f64::MIN_POSITIVE).ln();
        Dur::from_nanos_f64(mean.as_nanos() as f64 * x)
    }

    /// A standard normal deviate (Box–Muller).
    pub fn std_normal(&mut self) -> f64 {
        let u1: f64 = self.unit().max(f64::MIN_POSITIVE);
        let u2: f64 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A lognormally distributed duration parameterized by its *median* and
    /// the underlying normal's sigma. Lognormal service times are the
    /// classic model for request handlers with occasional slow outliers —
    /// exactly the tail behaviour Figure 20 measures.
    pub fn lognormal(&mut self, median: Dur, sigma: f64) -> Dur {
        let z = self.std_normal();
        Dur::from_nanos_f64(median.as_nanos() as f64 * (sigma * z).exp())
    }

    /// A duration uniformly jittered in `[base * (1-frac), base * (1+frac)]`.
    pub fn jittered(&mut self, base: Dur, frac: f64) -> Dur {
        let f = 1.0 + frac * (2.0 * self.unit() - 1.0);
        base.mul_f64(f.max(0.0))
    }

    /// Fills `buf` with random bytes (payload generation).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.step().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// A raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(42);
        let mut b = SimRng::seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should diverge");
    }

    #[test]
    fn forked_children_are_independent_and_deterministic() {
        let mut root1 = SimRng::seed(9);
        let mut root2 = SimRng::seed(9);
        let mut c1 = root1.fork(5);
        let mut c2 = root2.fork(5);
        assert_eq!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut rng = SimRng::seed(3);
        let mean = Dur::micros(10);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| rng.exponential(mean).as_nanos()).sum();
        let avg = total as f64 / n as f64;
        let expect = mean.as_nanos() as f64;
        assert!(
            (avg - expect).abs() / expect < 0.05,
            "avg={avg} expect={expect}"
        );
    }

    #[test]
    fn lognormal_median_is_roughly_right() {
        let mut rng = SimRng::seed(4);
        let median = Dur::micros(15);
        let mut xs: Vec<u64> = (0..20_001)
            .map(|_| rng.lognormal(median, 0.5).as_nanos())
            .collect();
        xs.sort_unstable();
        let med = xs[xs.len() / 2] as f64;
        let expect = median.as_nanos() as f64;
        assert!((med - expect).abs() / expect < 0.05, "med={med}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.03);
    }

    #[test]
    fn jittered_stays_in_band() {
        let mut rng = SimRng::seed(6);
        let base = Dur::micros(10);
        for _ in 0..1000 {
            let d = rng.jittered(base, 0.2);
            assert!(d >= Dur::micros(8) && d <= Dur::micros(12), "{d}");
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_uniform_range_panics() {
        let mut rng = SimRng::seed(0);
        let _ = rng.uniform_u64(5..5);
    }
}
