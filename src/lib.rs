//! # PMNet: In-Network Data Persistence — a Rust reproduction
//!
//! This is the facade crate of a full reproduction of *PMNet: In-Network
//! Data Persistence* (ISCA 2021). PMNet puts persistent memory on a
//! programmable network device (ToR switch or NIC); update requests are
//! logged in the device's PM while being forwarded and acknowledged to the
//! client **before** the server processes them — taking the server's
//! network stack and request handling off the critical path. Logged
//! requests double as redo logs for server recovery.
//!
//! The workspace layers (re-exported here):
//!
//! * [`sim`] — deterministic discrete-event kernel (time, events, RNG,
//!   statistics),
//! * [`net`] — the network substrate: packets, 10 Gbps links with FIFO
//!   queueing, switches, host stack models,
//! * [`pmem`] — the PM substrate: device timing, crash-semantics arena,
//!   WAL, five persistent key-value structures,
//! * [`core`] — PMNet itself: protocol, device MAT pipeline, client/server
//!   libraries, read cache, replication, failure recovery, and the
//!   [`core::system`] experiment builders,
//! * [`workloads`] — the evaluation workloads: PMDK KV stores, PM-Redis,
//!   Twitter (Retwis), TPCC, and the YCSB generator,
//! * [`traffic`] — the open-loop traffic engine: Poisson/MMPP arrivals,
//!   session-lifecycle churn over arena-backed tables, AIMD admission
//!   against `FLAG_CONGESTED`, and the overload-control study
//!   (`examples/overload_sweep.rs`).
//!
//! ## Quickstart
//!
//! ```
//! use pmnet::core::system::{DesignPoint, UpdateExperiment};
//! use pmnet::core::SystemConfig;
//!
//! // 200 update requests from one client through a PMNet ToR switch.
//! let metrics = UpdateExperiment::new(DesignPoint::PmnetSwitch, SystemConfig::default())
//!     .payload_bytes(100)
//!     .requests_per_client(200)
//!     .run(1);
//! assert_eq!(metrics.completed, 200);
//!
//! // The same workload against the traditional client-server baseline is
//! // several times slower: the full RTT sits on the critical path.
//! let baseline = UpdateExperiment::new(DesignPoint::ClientServer, SystemConfig::default())
//!     .payload_bytes(100)
//!     .requests_per_client(200)
//!     .run(1);
//! assert!(baseline.latency.mean() > metrics.latency.mean().mul_f64(2.0));
//! ```
//!
//! ## Chaos testing
//!
//! The [`chaos`] crate turns the durability claim into a search problem:
//! seeded random fault schedules (crashes, flaps, loss/duplication/
//! corruption bursts, PM slowdowns) run deterministically against any
//! design point, verdicts are checked against the persistence audit, and
//! failing schedules are ddmin-shrunk to minimal replayable artifacts.
//! See `examples/chaos_search.rs`.
//!
//! ## Observability
//!
//! The [`telemetry`] crate is an always-compiled, runtime-gated
//! observability layer: causal span tracing that attributes every op's
//! measured latency to protocol phases (the paper's Figure 2 breakdown,
//! from traces instead of constants), fixed-memory log-bucketed
//! histograms, a metric registry, and a crash flight recorder whose
//! timeline is embedded in chaos failure artifacts. Attach a handle with
//! [`core::system::BuiltSystem::attach_telemetry`]; hooks are pure
//! observation, so golden digests are bit-identical with telemetry on or
//! off (DESIGN.md §12).
//!
//! ## Model checking
//!
//! The [`model`] crate closes the loop on correctness: a feature-gated
//! recorder captures every invocation, acknowledgement, and apply of a
//! simulated run, and a durable-linearizability checker verifies the
//! history — and the server's final durable state — against a sequential
//! reference model, reporting the first divergent op as a replayable
//! artifact. The chaos harness runs it as an extra invariant on every
//! plan (DESIGN.md §11).
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! harnesses regenerating every figure of the paper's evaluation.

pub use pmnet_chaos as chaos;
pub use pmnet_core as core;
pub use pmnet_model as model;
pub use pmnet_net as net;
pub use pmnet_pmem as pmem;
pub use pmnet_sim as sim;
pub use pmnet_telemetry as telemetry;
pub use pmnet_traffic as traffic;
pub use pmnet_workloads as workloads;
